"""Live telemetry plane: fixed-slot shared-memory shard heartbeats.

The flight recorder (:mod:`repro.obs.tracing`) sees a pass only *after*
it closes; the progress reporter heartbeats once per pass.  Between
those two beats a multi-process engine is a black box — a wedged worker
and a long pass look identical from the parent.  This module gives every
shard worker a place to publish liveness *during* a pass, cheap enough
to update per work chunk and readable from any process on the host:

* :class:`TelemetrySegment` — one fixed-size shared byte range per
  mining engine: a 64-byte header plus one 128-byte record slot per
  participant (slot 0 is the coordinator, slots ``1..N`` the workers).
  Two interchangeable backing planes mirror the ``_SharedBlock`` ladder
  of :mod:`repro.db.shm`: ``"shm"`` uses
  :class:`multiprocessing.shared_memory.SharedMemory`; ``"file"`` maps a
  temp file with the stdlib :mod:`mmap` module, so the plane works
  without ``/dev/shm`` and without NumPy.
* :class:`TelemetryWriter` — the single-writer side of one slot.  Each
  publish is a **seqlock**: the sequence word goes odd, the payload is
  written, the sequence goes even — a reader that observes an odd or
  changed sequence simply retries, so no lock is ever shared between
  processes and a dead writer can never wedge a reader.
* :class:`TelemetryReader` — attach-by-name snapshot reads of any slot
  (:class:`HeartbeatRecord`), used by the coordinator's collector, the
  stall watchdog (:mod:`repro.obs.watchdog`), and the ``pincer obs top``
  console (:mod:`repro.obs.top`) — possibly from a different process
  than the mine.
* :class:`TelemetryCollector` — coordinator-side polling: aggregates
  per-shard rates into the :class:`~repro.obs.metrics.MetricsRegistry`
  and mirrors schema-v3 ``telemetry`` events into the trace.
* :class:`EngineTelemetry` — the bundle an engine owns: segment +
  coordinator writer + collector + watchdog, with ``worker_spec`` dicts
  small enough to ride in the existing worker-spawn messages.

Timestamps are ``time.monotonic()``: on Linux that is ``CLOCK_MONOTONIC``,
which is system-wide, so heartbeat ages computed in the parent (or in
``pincer obs top``) are directly comparable across processes.  Every
writer-side failure is swallowed: telemetry must never be the reason a
count is wrong or a worker dies.
"""

from __future__ import annotations

import mmap as _mmap_module
import os
import struct
import tempfile
import time
from typing import Any, Dict, List, Optional

from .logsetup import get_logger
from .resources import rusage_snapshot

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - very old interpreters
    _shared_memory = None

__all__ = [
    "EngineTelemetry",
    "HeartbeatRecord",
    "STATE_COUNTING",
    "STATE_DEAD",
    "STATE_DONE",
    "STATE_IDLE",
    "STATE_NAMES",
    "STATE_STEALING",
    "TelemetryCollector",
    "TelemetryConfig",
    "TelemetryReader",
    "TelemetrySegment",
    "TelemetryWriter",
]

logger = get_logger("obs.telemetry")

# ----------------------------------------------------------------------
# segment layout
# ----------------------------------------------------------------------

MAGIC = b"PINCTELE"
FORMAT_VERSION = 1

#: header: magic, version, num_slots, slot_size, zero padding to 64 bytes
_HEADER = struct.Struct("<8sIII44x")
HEADER_SIZE = _HEADER.size  # 64

#: slot payload, after the 8-byte sequence word:
#: pid, state, pass_no, candidates_done, candidates_total, rows_done,
#: rows_total, cursor, records_read, rss_kb, heartbeats (u64 each),
#: mono_ts, wall_ts (f64), bound, reserved (u64)
_SEQ = struct.Struct("<Q")
_PAYLOAD = struct.Struct("<11Q2d2Q")
SLOT_SIZE = _SEQ.size + _PAYLOAD.size  # 128

_PAYLOAD_FIELDS = (
    "pid",
    "state",
    "pass_no",
    "candidates_done",
    "candidates_total",
    "rows_done",
    "rows_total",
    "cursor",
    "records_read",
    "rss_kb",
    "heartbeats",
    "mono_ts",
    "wall_ts",
    "bound",
    "reserved",
)

#: worker state enum published in the ``state`` field
STATE_IDLE = 0
STATE_COUNTING = 1
STATE_STEALING = 2
STATE_DONE = 3
STATE_DEAD = 4

STATE_NAMES = {
    STATE_IDLE: "idle",
    STATE_COUNTING: "counting",
    STATE_STEALING: "stealing",
    STATE_DONE: "done",
    STATE_DEAD: "dead",
}

#: slot index reserved for the coordinating (parent) process
COORDINATOR_SLOT = 0


class HeartbeatRecord:
    """One consistent snapshot of a slot (all payload fields + ``slot``)."""

    __slots__ = ("slot", "seq") + _PAYLOAD_FIELDS

    def __init__(self, slot: int, seq: int, values) -> None:
        self.slot = slot
        self.seq = seq
        for name, value in zip(_PAYLOAD_FIELDS, values):
            setattr(self, name, value)

    @property
    def state_name(self) -> str:
        return STATE_NAMES.get(self.state, "unknown")

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since this record was published (monotonic clock)."""
        if now is None:
            now = time.monotonic()
        return max(0.0, now - self.mono_ts)

    def to_dict(self) -> Dict[str, Any]:
        cells = {name: getattr(self, name) for name in _PAYLOAD_FIELDS}
        cells["slot"] = self.slot
        cells["state_name"] = self.state_name
        return cells

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HeartbeatRecord(slot=%d, state=%s, beats=%d, age=%.3fs)" % (
            self.slot, self.state_name, self.heartbeats, self.age()
        )


def _slot_offset(slot: int) -> int:
    return HEADER_SIZE + slot * SLOT_SIZE


def _file_path_for(name: str) -> str:
    """Map a bare segment name onto the file plane's temp path."""
    if os.path.sep in name or os.path.isabs(name):
        return name
    return os.path.join(
        tempfile.gettempdir(), "pincer-tele-%s.tele" % name
    )


def _attach_shm(name: str):
    """Tracker-safe attach (mirrors :func:`repro.db.shm.attach_segment`).

    Attaching an existing segment on Python < 3.13 registers it with the
    process's resource tracker as if we owned it.  That is merely
    redundant inside the engine's process tree (workers share the
    creator's tracker, so the extra register is idempotent), but fatal
    in an unrelated observer such as ``pincer obs top``: its private
    tracker would *unlink the live segment* when the observer exits.
    We detect that case by whether a tracker was already running before
    the attach — if not, the tracker that just got spawned is ours alone
    and holds exactly this one registration, so removing it is both safe
    and required.
    """
    try:
        return _shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        try:
            from multiprocessing import resource_tracker

            fresh_tracker = resource_tracker._resource_tracker._fd is None
        except Exception:  # pragma: no cover - tracker API drift
            fresh_tracker = False
        segment = _shared_memory.SharedMemory(name=name, create=False)
        try:
            import multiprocessing

            if fresh_tracker or multiprocessing.get_start_method() != "fork":
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
        return segment


class _Backing:
    """One attached byte range: ``buf`` plus a close hook."""

    def __init__(self, buf, closer=None) -> None:
        self.buf = buf
        self._closer = closer

    def close(self) -> None:
        buf, closer = self.buf, self._closer
        self.buf = None
        self._closer = None
        if isinstance(buf, memoryview):
            try:
                buf.release()
            except (AttributeError, BufferError):  # pragma: no cover
                pass
        if closer is not None:
            try:
                closer()
            except (BufferError, OSError, ValueError):  # pragma: no cover
                pass


def _attach_backing(name: str, plane: Optional[str]) -> _Backing:
    """Attach an existing segment by name; raises ``FileNotFoundError``.

    With ``plane=None`` the shm namespace is probed first, then the file
    plane's temp-path mapping — which is also how ``pincer obs top``
    finds a segment given only its name.
    """
    if plane in (None, "shm") and _shared_memory is not None:
        try:
            segment = _attach_shm(name)
            return _Backing(memoryview(segment.buf), segment.close)
        except (FileNotFoundError, OSError, ValueError):
            if plane == "shm":
                raise FileNotFoundError(
                    "no shm telemetry segment named %r" % name
                )
    path = _file_path_for(name)
    handle = open(path, "r+b")
    try:
        mapped = _mmap_module.mmap(handle.fileno(), 0)
    finally:
        handle.close()
    return _Backing(memoryview(mapped), mapped.close)


# ----------------------------------------------------------------------
# the segment (creator side)
# ----------------------------------------------------------------------


class TelemetrySegment:
    """Creator-owned telemetry segment: header + ``num_slots`` slots.

    Parameters
    ----------
    num_workers:
        Worker slots to allocate (the coordinator slot rides on top).
    name:
        Optional stable name so external tools can attach (``pincer obs
        top NAME``).  Default: a kernel- or tempfile-generated name,
        discoverable through :attr:`name`.
    plane:
        ``"shm"`` | ``"file"`` | None (auto: shm when available).
    """

    def __init__(
        self,
        num_workers: int,
        name: Optional[str] = None,
        plane: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.num_slots = num_workers + 1
        size = HEADER_SIZE + self.num_slots * SLOT_SIZE
        if plane is None:
            plane = "shm" if _shared_memory is not None else "file"
        self.plane = plane
        self._segment = None
        self._mapped = None
        self._path: Optional[str] = None
        if plane == "shm":
            if _shared_memory is None:
                raise RuntimeError("shared_memory unavailable on this build")
            self._segment = self._create_shm(name, size)
            self.name = self._segment.name.lstrip("/")
            self._buf = memoryview(self._segment.buf)
        elif plane == "file":
            if name is None:
                handle, path = tempfile.mkstemp(
                    prefix="pincer-tele-", suffix=".tele"
                )
            else:
                path = _file_path_for(name)
                handle = os.open(path, os.O_CREAT | os.O_RDWR, 0o600)
            os.ftruncate(handle, size)
            self._mapped = _mmap_module.mmap(handle, size)
            os.close(handle)
            self._path = path
            self.name = path if name is None else name
            self._buf = memoryview(self._mapped)
        else:
            raise ValueError("unknown telemetry plane %r" % plane)
        self._buf[:size] = b"\x00" * size
        _HEADER.pack_into(
            self._buf, 0, MAGIC, FORMAT_VERSION, self.num_slots, SLOT_SIZE
        )

    @staticmethod
    def _create_shm(name: Optional[str], size: int):
        if name is None:
            return _shared_memory.SharedMemory(create=True, size=size)
        try:
            return _shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            # a previous run died without unlinking; reclaim the name
            stale = _shared_memory.SharedMemory(name=name, create=False)
            stale.close()
            stale.unlink()
            return _shared_memory.SharedMemory(name=name, create=True, size=size)

    # ------------------------------------------------------------------

    def writer(self, slot: int) -> "TelemetryWriter":
        """The (single) writer handle for ``slot`` over the own mapping."""
        return TelemetryWriter(self._buf, slot)

    def reader(self) -> "TelemetryReader":
        """A reader over the own mapping (no re-attach)."""
        return TelemetryReader(self._buf, self.num_slots)

    def worker_spec(self, worker_id: int) -> Dict[str, Any]:
        """The attach recipe a worker needs: tiny, pickles anywhere."""
        return {
            "name": self._path if self.plane == "file" else self.name,
            "plane": self.plane,
            "slot": worker_id + 1,
        }

    def close(self) -> None:
        """Release the mapping and unlink the backing object (idempotent)."""
        buf, self._buf = self._buf, None
        if buf is not None:
            try:
                buf.release()
            except (AttributeError, BufferError):  # pragma: no cover
                pass
        if self._segment is not None:
            segment, self._segment = self._segment, None
            for method in ("close", "unlink"):
                try:
                    getattr(segment, method)()
                except (BufferError, FileNotFoundError, OSError):
                    pass
        if self._mapped is not None:
            mapped, self._mapped = self._mapped, None
            try:
                mapped.close()
            except (BufferError, OSError):  # pragma: no cover
                pass
        if self._path is not None:
            path, self._path = self._path, None
            try:
                os.unlink(path)
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __enter__(self) -> "TelemetrySegment":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# writer (one per slot, one process each)
# ----------------------------------------------------------------------


class TelemetryWriter:
    """Seqlock publisher for one slot.

    The writer keeps the slot's current field values locally; each
    :meth:`beat` republishes the full payload under an odd/even sequence
    bracket.  :meth:`advance` accumulates counter deltas *without*
    publishing, and :meth:`maybe_beat` publishes at most once per
    ``min_interval`` — together they make a per-work-chunk callback
    cheap enough to pass as an engine ``deadline_check``.
    """

    def __init__(self, buf, slot: int, backing: Optional[_Backing] = None) -> None:
        self._buf = buf
        self._offset = _slot_offset(slot)
        self._backing = backing
        self.slot = slot
        self._seq = 0
        self._values: Dict[str, Any] = {name: 0 for name in _PAYLOAD_FIELDS}
        self._values["pid"] = os.getpid()
        self._last_publish = 0.0
        self.min_interval = 0.05

    @classmethod
    def attach(cls, spec: Optional[Dict[str, Any]]) -> Optional["TelemetryWriter"]:
        """Worker-side attach from a :meth:`TelemetrySegment.worker_spec`.

        Returns None on any failure — a worker must count correctly with
        or without a telemetry plane.
        """
        if not spec:
            return None
        try:
            backing = _attach_backing(spec["name"], spec.get("plane"))
            return cls(backing.buf, spec["slot"], backing=backing)
        except Exception:
            logger.debug(
                "telemetry attach failed for %r", spec, exc_info=True
            )
            return None

    # ------------------------------------------------------------------

    def advance(self, **deltas: int) -> None:
        """Accumulate counter deltas locally (published at the next beat)."""
        values = self._values
        for name, delta in deltas.items():
            values[name] = values.get(name, 0) + delta

    def note(self, **fields: Any) -> None:
        """Set absolute field values locally (published at the next beat)."""
        self._values.update(fields)

    def beat(self, state: Optional[int] = None, **fields: Any) -> None:
        """Publish a heartbeat: absolute ``fields``, then the seqlock write."""
        values = self._values
        if state is not None:
            values["state"] = state
        for name, value in fields.items():
            values[name] = value
        values["heartbeats"] += 1
        now = time.monotonic()
        values["mono_ts"] = now
        values["wall_ts"] = time.time()
        values["rss_kb"] = rusage_snapshot().get("maxrss_kb", 0)
        try:
            buf, offset = self._buf, self._offset
            self._seq += 1  # odd: write in progress
            _SEQ.pack_into(buf, offset, self._seq)
            _PAYLOAD.pack_into(
                buf,
                offset + _SEQ.size,
                int(values["pid"]),
                int(values["state"]),
                int(values["pass_no"]),
                int(values["candidates_done"]),
                int(values["candidates_total"]),
                int(values["rows_done"]),
                int(values["rows_total"]),
                int(values["cursor"]),
                int(values["records_read"]),
                int(values["rss_kb"]),
                int(values["heartbeats"]),
                float(values["mono_ts"]),
                float(values["wall_ts"]),
                int(values["bound"]),
                int(values["reserved"]),
            )
            self._seq += 1  # even: consistent
            _SEQ.pack_into(buf, offset, self._seq)
            self._last_publish = now
        except (TypeError, ValueError, struct.error):
            # a detached buffer or a wildly out-of-range value must never
            # take the worker down with it
            logger.debug("telemetry beat failed", exc_info=True)

    def maybe_beat(self) -> None:
        """Throttled :meth:`beat` — safe as a per-chunk deadline callback."""
        if time.monotonic() - self._last_publish >= self.min_interval:
            self.beat()

    def close(self) -> None:
        self._buf = None
        if self._backing is not None:
            backing, self._backing = self._backing, None
            backing.close()


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------


class TelemetryReader:
    """Snapshot reads of any slot, tolerant of concurrent writers."""

    #: seqlock retries before giving a torn slot up for this poll
    MAX_RETRIES = 4

    def __init__(self, buf, num_slots: int, backing: Optional[_Backing] = None) -> None:
        self._buf = buf
        self._backing = backing
        self.num_slots = num_slots

    @classmethod
    def attach(cls, name: str, plane: Optional[str] = None) -> "TelemetryReader":
        """Attach by segment name (shm namespace, else temp-file path)."""
        backing = _attach_backing(name, plane)
        magic, version, num_slots, slot_size = _HEADER.unpack_from(backing.buf, 0)
        if magic != MAGIC:
            backing.close()
            raise ValueError("%r is not a telemetry segment" % name)
        if version != FORMAT_VERSION or slot_size != SLOT_SIZE:
            backing.close()
            raise ValueError(
                "telemetry segment %r has format v%d/slot %dB; "
                "this reader expects v%d/%dB"
                % (name, version, slot_size, FORMAT_VERSION, SLOT_SIZE)
            )
        return cls(backing.buf, num_slots, backing=backing)

    # ------------------------------------------------------------------

    def read(self, slot: int) -> Optional[HeartbeatRecord]:
        """One consistent snapshot, or None (never written / torn read)."""
        if not 0 <= slot < self.num_slots:
            raise IndexError("slot %d out of range" % slot)
        buf = self._buf
        offset = _slot_offset(slot)
        for _ in range(self.MAX_RETRIES):
            (seq_before,) = _SEQ.unpack_from(buf, offset)
            if seq_before == 0:
                return None  # never published
            if seq_before % 2:
                continue  # writer mid-publish: retry
            values = _PAYLOAD.unpack_from(buf, offset + _SEQ.size)
            (seq_after,) = _SEQ.unpack_from(buf, offset)
            if seq_after == seq_before:
                return HeartbeatRecord(slot, seq_before, values)
        return None

    def coordinator(self) -> Optional[HeartbeatRecord]:
        return self.read(COORDINATOR_SLOT)

    def workers(self) -> List[Optional[HeartbeatRecord]]:
        """Records for slots ``1..N`` (None where unwritten/torn)."""
        return [self.read(slot) for slot in range(1, self.num_slots)]

    def close(self) -> None:
        self._buf = None
        if self._backing is not None:
            backing, self._backing = self._backing, None
            backing.close()


# ----------------------------------------------------------------------
# configuration + coordinator-side aggregation
# ----------------------------------------------------------------------


class TelemetryConfig:
    """How an engine should run its telemetry plane.

    Parameters
    ----------
    name:
        Stable segment name for external attachment; None lets the plane
        pick one (logged, and visible on ``engine._telemetry``).
    plane:
        ``"shm"`` | ``"file"`` | None (auto).
    stall_factor / min_stall_seconds:
        A pending worker is stalled once its heartbeat age exceeds
        ``max(min_stall_seconds, stall_factor x EWMA inter-beat
        interval)``.
    stall_after:
        Hard age threshold in seconds, overriding the adaptive one.
    poll_interval:
        Collector aggregation cadence (seconds).
    """

    enabled = True

    def __init__(
        self,
        name: Optional[str] = None,
        plane: Optional[str] = None,
        stall_factor: float = 8.0,
        min_stall_seconds: float = 2.0,
        stall_after: Optional[float] = None,
        poll_interval: float = 0.25,
    ) -> None:
        if stall_factor <= 0:
            raise ValueError("stall_factor must be positive")
        if min_stall_seconds <= 0:
            raise ValueError("min_stall_seconds must be positive")
        self.name = name
        self.plane = plane
        self.stall_factor = stall_factor
        self.min_stall_seconds = min_stall_seconds
        self.stall_after = stall_after
        self.poll_interval = poll_interval

    @classmethod
    def from_option(cls, value) -> Optional["TelemetryConfig"]:
        """Normalise a CLI/capture() option into a config (or None)."""
        if value is None or value is False:
            return None
        if isinstance(value, cls):
            return value
        if value is True or value == "auto":
            return cls()
        return cls(name=str(value))


class TelemetryCollector:
    """Coordinator-side poller: per-shard rates -> metrics + trace.

    Each :meth:`poll` (throttled to the config's ``poll_interval``)
    snapshots every worker slot, differentiates the cumulative counters
    against the previous snapshot into candidates/rows rates, updates
    the ``telemetry.*`` gauges, and mirrors one schema-v3 ``telemetry``
    event into the trace.
    """

    def __init__(
        self,
        reader: TelemetryReader,
        obs=None,
        interval: float = 0.25,
    ) -> None:
        self._reader = reader
        self._obs = obs
        self._interval = interval
        self._last_poll = 0.0
        self._prev: Dict[int, tuple] = {}
        #: aggregate of the most recent poll (tests + top console reuse)
        self.last_summary: Optional[Dict[str, Any]] = None

    def poll(self, now: Optional[float] = None, force: bool = False):
        """Aggregate one snapshot; returns the summary dict (or None)."""
        if now is None:
            now = time.monotonic()
        if not force and now - self._last_poll < self._interval:
            return None
        self._last_poll = now
        records = self._reader.workers()
        active = 0
        candidates_rate = 0.0
        rows_rate = 0.0
        candidates_done = 0
        rss_max = 0
        beats = 0
        for record in records:
            if record is None:
                continue
            beats += record.heartbeats
            candidates_done += record.candidates_done
            rss_max = max(rss_max, record.rss_kb)
            if record.state in (STATE_COUNTING, STATE_STEALING):
                active += 1
            previous = self._prev.get(record.slot)
            if previous is not None:
                prev_ts, prev_candidates, prev_rows = previous
                dt = record.mono_ts - prev_ts
                if dt > 0:
                    candidates_rate += (
                        record.candidates_done - prev_candidates
                    ) / dt
                    rows_rate += (record.rows_done - prev_rows) / dt
            self._prev[record.slot] = (
                record.mono_ts, record.candidates_done, record.rows_done
            )
        coordinator = self._reader.coordinator()
        summary = {
            "workers": sum(1 for record in records if record is not None),
            "workers_active": active,
            "candidates_per_s": round(candidates_rate, 3),
            "rows_per_s": round(rows_rate, 3),
            "candidates_done": candidates_done,
            "rss_kb_max": rss_max,
            "heartbeats": beats,
            "pass_no": coordinator.pass_no if coordinator else 0,
            "bound": coordinator.bound if coordinator else 0,
        }
        self.last_summary = summary
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.gauge("telemetry.workers_active").set(active)
            obs.gauge("telemetry.candidates_per_s").set(
                summary["candidates_per_s"]
            )
            obs.gauge("telemetry.rows_per_s").set(summary["rows_per_s"])
            obs.gauge("telemetry.rss_kb_max").set(rss_max)
            obs.gauge("telemetry.heartbeats").set(beats)
            obs.tracer.emit_event("telemetry", **summary)
        return summary


# ----------------------------------------------------------------------
# the engine-owned bundle
# ----------------------------------------------------------------------


class EngineTelemetry:
    """Everything an engine needs: segment, coordinator slot, collector,
    watchdog — built just before the workers spawn so each worker's spec
    can carry its slot assignment.
    """

    def __init__(self, num_workers: int, config: TelemetryConfig, obs=None) -> None:
        self.config = config
        self.segment = TelemetrySegment(
            num_workers, name=config.name, plane=config.plane
        )
        self.name = self.segment.name
        self.plane = self.segment.plane
        self.num_workers = num_workers
        self.coordinator = self.segment.writer(COORDINATOR_SLOT)
        self.reader = self.segment.reader()
        self.collector = TelemetryCollector(
            self.reader, obs=obs, interval=config.poll_interval
        )
        from .watchdog import StallWatchdog

        self.watchdog = StallWatchdog(self.reader, config=config, obs=obs)
        self.coordinator.beat(state=STATE_IDLE)
        logger.info(
            "telemetry plane up: segment %r (%s), %d worker slots "
            "(attach with: pincer obs top %s)",
            self.name, self.plane, num_workers, self.name,
        )

    def worker_spec(self, worker_id: int) -> Dict[str, Any]:
        return self.segment.worker_spec(worker_id)

    # -- coordinator beats --------------------------------------------

    def begin_pass(
        self, pass_no: int, num_candidates: int, mode: Optional[str] = None
    ) -> None:
        state = STATE_STEALING if mode == "candidates" else STATE_COUNTING
        self.coordinator.beat(
            state=state,
            pass_no=pass_no,
            candidates_total=num_candidates,
        )

    def end_pass(self, num_candidates: int) -> None:
        self.coordinator.advance(candidates_done=num_candidates)
        self.coordinator.beat(state=STATE_IDLE)
        self.collector.poll(force=True)

    def note_bound(self, bound: int) -> None:
        """Publish the candidate upper bound for the *next* pass (ETA)."""
        self.coordinator.beat(bound=max(0, int(bound)))

    # -- mid-pass servicing -------------------------------------------

    def poll(self) -> None:
        self.collector.poll()

    def check_stalls(self, pending, alive=None):
        """Watchdog sweep over worker ids still owing a reply."""
        return self.watchdog.check(pending, alive=alive)

    def note_worker_dead(self, worker_id: int):
        """Flag a death the engine discovered before the watchdog did."""
        return self.watchdog.flag_dead(worker_id)

    def close(self) -> None:
        self.coordinator.close()
        self.reader.close()
        self.segment.close()
