"""Stdlib-``logging`` integration: the ``repro`` logger hierarchy.

Library modules obtain loggers through :func:`get_logger`, which roots
everything under the ``repro`` namespace (``repro.core.pincer``,
``repro.db.parallel``, ...) so one call configures the whole tree.  The
package installs a :class:`logging.NullHandler` on the root ``repro``
logger at import, per library convention — silence by default, no
"no handler could be found" warnings, and the *application* (the CLI's
``--log-level`` flag, or a test) decides whether anything is printed.

:func:`configure_logging` is that application-side switch: it attaches a
single stream handler with a compact ``time level logger: message``
format and sets the level.  Calling it twice reconfigures instead of
stacking handlers.
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional, Union

__all__ = ["ROOT_LOGGER_NAME", "configure_logging", "get_logger"]

#: The root of the library's logger hierarchy.
ROOT_LOGGER_NAME = "repro"

#: Accepted ``--log-level`` spellings (case-insensitive).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Marker attribute identifying the handler :func:`configure_logging` owns.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("core.pincer")`` and ``get_logger("repro.core.pincer")``
    return the same logger; the empty string returns the root ``repro``
    logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(ROOT_LOGGER_NAME + "." + name)


def resolve_level(level: Union[int, str]) -> int:
    """Normalise a level name ('info', 'DEBUG', ...) or int to an int."""
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(
            "unknown log level %r (choose from %s)" % (level, ", ".join(LOG_LEVELS))
        )
    return resolved


def configure_logging(
    level: Union[int, str] = "info", stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger and set the level.

    Idempotent: a handler installed by a previous call is replaced, never
    duplicated.  Returns the configured root ``repro`` logger.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(resolve_level(level))
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    return logger


# library convention: silent unless the application configures logging
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
