"""Heartbeat progress reporting for long mining runs.

A mining run's pass structure is its natural progress axis, and the
Geerts–Goethals–Van den Bussche candidate bound (already computed each
pass for the adaptive policy, see
:func:`repro.core.bitset.candidate_upper_bound`) is a *provable* upper
bound on the next pass's bottom-up candidates — which makes it an honest
ETA signal: ``bound / (candidates counted per second so far)`` bounds the
next pass's counting time from above.  :class:`ProgressReporter` combines
``|C_k|``, the MFCS front size, and that bound into

* a live one-line-per-pass heartbeat on a stream (the CLI's
  ``--progress`` sends it to stderr), and
* machine-readable ``progress`` events (schema v2, see
  :mod:`repro.obs.schema`) — appended into the trace stream when a
  tracer is attached, and/or into a standalone JSONL sink.

Like everything in ``repro.obs`` it is opt-in: the shared
:data:`NOOP_PROGRESS` answers every callback with a no-op, and the miners
guard their calls behind ``progress.enabled``.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Dict, IO, List, Optional

from .schema import SCHEMA_VERSION

__all__ = ["NOOP_PROGRESS", "NoopProgress", "ProgressReporter"]


class NoopProgress:
    """Disabled reporter: every callback is free."""

    enabled = False

    __slots__ = ()

    def start_run(self, **fields: Any) -> None:
        return None

    def on_pass(self, **fields: Any) -> None:
        return None

    def on_abandon(self, **fields: Any) -> None:
        return None

    def on_finish(self, **fields: Any) -> None:
        return None


NOOP_PROGRESS = NoopProgress()


class ProgressReporter:
    """Per-pass heartbeat: human line + machine-readable event.

    Parameters
    ----------
    stream:
        Text stream for the human-readable heartbeat (default: stderr).
        Pass None to silence the human side.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`; progress events are
        then appended to the trace stream as schema ``progress`` lines.
        Once the tracer's ``max_events`` cap has been reached the mirror
        stops (the tracer would drop the event anyway) — the human line
        and the ``events`` list keep flowing, and every unmirrored event
        is tallied in :attr:`dropped_events` and, when ``metrics`` is
        given, the ``progress.dropped_events`` counter.
    events_sink:
        Optional writable text object receiving the same events as
        standalone JSONL (for tailing a file independently of the trace).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        the ``progress.dropped_events`` counter.
    """

    enabled = True

    def __init__(
        self,
        stream: Optional[IO[str]] = sys.stderr,
        tracer: Optional[Any] = None,
        events_sink: Optional[IO[str]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self._stream = stream
        self._tracer = tracer
        self._events_sink = events_sink
        self._metrics = metrics
        #: every emitted event, for programmatic consumers and tests
        self.events: List[Dict[str, Any]] = []
        #: events the tracer cap kept out of the trace stream
        self.dropped_events = 0
        self._started = time.perf_counter()
        self._candidates_total = 0
        self._label = "run"

    # ------------------------------------------------------------------

    def _tracer_capped(self) -> bool:
        """True once the attached tracer can no longer accept events."""
        tracer = self._tracer
        if tracer is None:
            return True
        cap = getattr(tracer, "max_events", None)
        return cap is not None and tracer.events_emitted >= cap

    def _emit(self, phase: str, line: Optional[str], **fields: Any) -> None:
        event: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": "progress",
            "ts": time.time(),
            "phase": phase,
        }
        event.update(fields)
        self.events.append(event)
        if self._tracer is not None:
            if self._tracer_capped():
                # the tracer would silently swallow it; keep the human
                # side alive and make the loss observable instead
                self.dropped_events += 1
                if self._metrics is not None:
                    self._metrics.counter("progress.dropped_events").inc()
            else:
                self._tracer.emit_event("progress", phase=phase, **fields)
        if self._events_sink is not None:
            self._events_sink.write(
                json.dumps(event, separators=(",", ":")) + "\n"
            )
        if self._stream is not None and line is not None:
            self._stream.write(line + "\n")
            try:
                self._stream.flush()
            except (OSError, ValueError):  # pragma: no cover - closed stream
                pass

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    # ------------------------------------------------------------------
    # miner callbacks
    # ------------------------------------------------------------------

    def start_run(
        self,
        algorithm: str = "run",
        num_transactions: int = 0,
        min_support_count: int = 0,
    ) -> None:
        self._started = time.perf_counter()
        self._candidates_total = 0
        self._label = algorithm
        self._emit(
            "start",
            "[%s] mining %d transactions (min support %d)"
            % (algorithm, num_transactions, min_support_count),
            algorithm=algorithm,
            num_transactions=num_transactions,
            min_support_count=min_support_count,
        )

    def on_pass(
        self,
        k: int,
        candidates: int,
        mfcs_size: int,
        candidate_bound: int,
        maximal_found: int = 0,
        mfs_size: int = 0,
        phase: str = "pass",
    ) -> None:
        """One finished pass; ``candidate_bound`` caps the *next* pass."""
        self._candidates_total += candidates
        elapsed = self.elapsed
        rate = self._candidates_total / elapsed if elapsed > 0 else 0.0
        # the bound is provable, so bound/rate is an upper bound on the
        # next pass's counting time — "on track" means this keeps shrinking
        eta_next = candidate_bound / rate if rate > 0 else 0.0
        line = (
            "[%s] %s %d: %d candidates, |MFCS|=%d, |MFS|=%d (+%d), "
            "bound %d -> next pass <= %.2fs (%.1fs elapsed)"
            % (
                self._label, phase, k, candidates, mfcs_size, mfs_size,
                maximal_found, candidate_bound, eta_next, elapsed,
            )
        )
        self._emit(
            phase,
            line,
            k=k,
            candidates=candidates,
            candidates_total=self._candidates_total,
            mfcs_size=mfcs_size,
            mfs_size=mfs_size,
            maximal_found=maximal_found,
            candidate_bound=candidate_bound,
            rate_per_s=round(rate, 3),
            eta_next_pass_s=round(eta_next, 6),
            elapsed_s=round(elapsed, 6),
        )

    def on_abandon(self, k: int, reason: str = "policy") -> None:
        self._emit(
            "abandon",
            "[%s] pass %d: MFCS abandoned (%s); completing bottom-up"
            % (self._label, k, reason),
            k=k,
            reason=reason,
            elapsed_s=round(self.elapsed, 6),
        )

    def on_finish(
        self, mfs_size: int = 0, passes: int = 0, seconds: float = 0.0
    ) -> None:
        self._emit(
            "finish",
            "[%s] done: |MFS|=%d after %d passes in %.2fs"
            % (self._label, mfs_size, passes, seconds),
            mfs_size=mfs_size,
            passes=passes,
            seconds=round(seconds, 6),
            candidates_total=self._candidates_total,
        )
