"""Stall watchdog: adaptive heartbeat-age detection over the telemetry plane.

A worker that stops beating mid-pass is one of two very different
problems, and the watchdog distinguishes them:

* **dead** — the process itself is gone (crash, OOM-kill, SIGKILL).  It
  will never answer; detection is immediate via the engine's liveness
  callback, no threshold needed.
* **wedged** — the process is alive but its heartbeat is stale (stuck
  syscall, livelock, SIGSTOP).  Detection is by heartbeat age against an
  adaptive threshold: ``stall_factor`` x the per-worker EWMA inter-beat
  interval, floored at ``min_stall_seconds`` (or a hard ``stall_after``
  override).  The EWMA makes the threshold self-scaling — a worker that
  beats every few milliseconds through its counting loop is flagged in
  well under a second of silence, while a plane whose beats are
  naturally sparse gets proportional patience.

The watchdog only judges workers the engine says are *pending* (owing a
reply): an idle worker between passes beats rarely and must not be
flagged.  Each stall is reported once as a :class:`StallEvent`, mirrored
into the trace as a schema-v3 ``shard_stalled`` event, and counted in
``telemetry.shard_stalled``; the engine reacts by reassigning the
shard's remaining work to live processes (see ``db/parallel.py`` /
``db/shm.py``) and stepping down the fallback ladder at the next attach.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from .logsetup import get_logger
from .telemetry import (
    HeartbeatRecord,
    TelemetryConfig,
    TelemetryReader,
)

__all__ = ["StallEvent", "StallWatchdog"]

logger = get_logger("obs.watchdog")

#: EWMA smoothing for the observed inter-beat interval
_ALPHA = 0.3

#: floor for the EWMA itself, so a burst of sub-millisecond beats cannot
#: collapse the threshold to the poll jitter scale
_MIN_INTERVAL = 0.005


class StallEvent:
    """One detected stall: which shard, which failure mode, how stale."""

    __slots__ = ("shard", "slot", "pid", "kind", "age_s", "threshold_s")

    def __init__(
        self,
        shard: int,
        slot: int,
        pid: int,
        kind: str,
        age_s: float,
        threshold_s: float,
    ) -> None:
        self.shard = shard
        self.slot = slot
        self.pid = pid
        self.kind = kind  # "dead" | "wedged"
        self.age_s = age_s
        self.threshold_s = threshold_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "StallEvent(shard=%d, kind=%s, age=%.3fs)" % (
            self.shard, self.kind, self.age_s
        )


class StallWatchdog:
    """Flags pending workers whose heartbeats have gone stale.

    Parameters
    ----------
    reader:
        The telemetry reader over the engine's segment (worker ``i``
        publishes into slot ``i + 1``).
    config:
        Threshold knobs (see :class:`~repro.obs.telemetry.TelemetryConfig`).
    obs:
        Optional instrumentation bundle receiving the ``shard_stalled``
        trace events and counters.
    """

    #: minimum seconds between full sweeps (the engines call
    #: :meth:`check` from a tight reply-poll loop)
    CHECK_INTERVAL = 0.05

    def __init__(
        self,
        reader: TelemetryReader,
        config: Optional[TelemetryConfig] = None,
        obs=None,
    ) -> None:
        self._reader = reader
        self._config = config if config is not None else TelemetryConfig()
        self._obs = obs
        self._ewma: Dict[int, float] = {}
        self._last_beat: Dict[int, tuple] = {}  # slot -> (beats, mono_ts)
        self._first_seen: Dict[int, float] = {}
        self._flagged: Dict[int, StallEvent] = {}
        self._last_check = 0.0

    # ------------------------------------------------------------------

    def threshold_for(self, slot: int) -> float:
        """The current stall threshold (seconds) for ``slot``."""
        config = self._config
        if config.stall_after is not None:
            return config.stall_after
        interval = self._ewma.get(slot, config.min_stall_seconds)
        return max(config.min_stall_seconds, config.stall_factor * interval)

    def _observe(self, slot: int, record: Optional[HeartbeatRecord]) -> None:
        """Fold a snapshot into the slot's EWMA inter-beat interval."""
        if record is None:
            return
        previous = self._last_beat.get(slot)
        if previous is not None:
            prev_beats, prev_ts = previous
            delta = record.heartbeats - prev_beats
            if delta > 0 and record.mono_ts > prev_ts:
                interval = max(
                    _MIN_INTERVAL, (record.mono_ts - prev_ts) / delta
                )
                ewma = self._ewma.get(slot)
                self._ewma[slot] = (
                    interval
                    if ewma is None
                    else (1.0 - _ALPHA) * ewma + _ALPHA * interval
                )
        if previous is None or record.heartbeats != previous[0]:
            self._last_beat[slot] = (record.heartbeats, record.mono_ts)

    def check(
        self,
        pending: Iterable[int],
        alive: Optional[Callable[[int], bool]] = None,
        now: Optional[float] = None,
    ) -> List[StallEvent]:
        """Sweep the pending workers; returns *newly* detected stalls.

        ``pending`` holds worker ids (0-based) still owing a reply this
        pass; ``alive(worker_id)`` is the engine's process-liveness
        probe.  A worker is reported once — re-raising the same stall
        every poll would turn one wedge into an event storm.
        """
        if now is None:
            now = time.monotonic()
        if now - self._last_check < self.CHECK_INTERVAL:
            return []
        self._last_check = now
        events: List[StallEvent] = []
        for worker_id in sorted(set(pending)):
            slot = worker_id + 1
            if slot in self._flagged:
                continue
            record = self._reader.read(slot)
            self._observe(slot, record)
            pid = record.pid if record is not None else 0
            if alive is not None and not alive(worker_id):
                # process gone: no reply will ever come, flag immediately
                age = record.age(now) if record is not None else 0.0
                event = StallEvent(
                    worker_id, slot, pid, "dead", age, 0.0
                )
            else:
                if record is not None:
                    age = record.age(now)
                else:
                    # never beaten (attach raced/failed): age since the
                    # watchdog first saw the slot pending
                    first = self._first_seen.setdefault(slot, now)
                    age = now - first
                threshold = self.threshold_for(slot)
                if age <= threshold:
                    continue
                event = StallEvent(
                    worker_id, slot, pid, "wedged", age, threshold
                )
            self._flagged[slot] = event
            events.append(event)
            self._emit(event)
        return events

    def flag_dead(self, worker_id: int) -> Optional[StallEvent]:
        """Record a death the engine discovered itself (send/recv race).

        A worker can die between watchdog sweeps and announce it through
        a ``BrokenPipeError``/``EOFError`` before :meth:`check` ever sees
        it; the engine calls this so the ``shard_stalled`` event is
        emitted either way.  Idempotent per slot — a stall the watchdog
        already flagged is not re-raised.
        """
        slot = worker_id + 1
        if slot in self._flagged:
            return None
        record = self._reader.read(slot)
        now = time.monotonic()
        event = StallEvent(
            worker_id,
            slot,
            record.pid if record is not None else 0,
            "dead",
            record.age(now) if record is not None else 0.0,
            0.0,
        )
        self._flagged[slot] = event
        self._emit(event)
        return event

    def reset(self, worker_id: int) -> None:
        """Forget a worker's stall (after the engine replaced it)."""
        slot = worker_id + 1
        self._flagged.pop(slot, None)
        self._last_beat.pop(slot, None)
        self._ewma.pop(slot, None)
        self._first_seen.pop(slot, None)

    @property
    def stalled(self) -> List[StallEvent]:
        """Every stall flagged so far (ordered by slot)."""
        return [self._flagged[slot] for slot in sorted(self._flagged)]

    # ------------------------------------------------------------------

    def _emit(self, event: StallEvent) -> None:
        logger.warning(
            "shard %d stalled (%s): heartbeat age %.3fs, threshold %.3fs, "
            "pid %d",
            event.shard, event.kind, event.age_s, event.threshold_s, event.pid,
        )
        obs = self._obs
        if obs is None or not obs.enabled:
            return
        obs.counter("telemetry.shard_stalled").inc()
        obs.counter("telemetry.shard_stalled.%s" % event.kind).inc()
        obs.tracer.emit_event(
            "shard_stalled",
            shard=event.shard,
            kind=event.kind,
            age_s=round(event.age_s, 6),
            threshold_s=round(event.threshold_s, 6),
            pid=event.pid,
        )
