"""Nestable wall-clock spans emitted as JSONL events.

A :class:`Tracer` owns an output sink and a stack of open spans; calling
:meth:`Tracer.span` inside a ``with`` block opens a child of whatever span
is currently innermost, so the miners' natural call structure produces the
documented hierarchy (``run > pass > {count, prune, mfcs_gen, generate,
recover}``) without any explicit parent plumbing.  Span events are written
when the span *closes* (see :mod:`repro.obs.schema` for the event shape).

Tracing is strictly opt-in.  The default tracer everywhere is
:data:`NOOP_TRACER`, whose :meth:`~NoopTracer.span` hands back a shared
:class:`NoopSpan` — entering it, setting attributes on it, and leaving it
are all attribute lookups plus a no-op call, so instrumented code paths
cost effectively nothing when nobody asked for a trace.  Hot loops should
still guard per-item work behind ``tracer.enabled`` /
``Instrumentation.enabled``.

The tracer is synchronous and single-writer by design: mining runs are
single-threaded in the coordinating process (shard workers report numbers
over their result channel instead of tracing directly), so a lock would
buy nothing.

:meth:`Tracer.bind` adds *ambient context*: a ``with tracer.bind(
request_id=...)`` block stamps its attributes onto every span opened
inside it (explicit span attributes win on collision), and optionally
collects the closed span events into a caller-supplied list.  This is how
the serve front-end threads one ``request_id`` through ``run > pass >
{count, prune, mfcs_gen}`` without touching any miner signature — the
session binds *inside* its query lock, so the single-writer contract
extends to the ambient state too.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, IO, List, Optional

from .schema import SCHEMA_VERSION

__all__ = [
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopSpan",
    "NoopTracer",
    "Span",
    "TraceBinding",
    "Tracer",
]


def _clean_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to schema scalars (repr anything exotic)."""
    cleaned: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, bool) or value is None or isinstance(value, str):
            cleaned[key] = value
        elif isinstance(value, int):
            cleaned[key] = int(value)  # normalises IntEnum / numpy ints
        elif isinstance(value, float):
            cleaned[key] = float(value)
        else:
            cleaned[key] = repr(value)
    return cleaned


class Span:
    """One open span; a context manager that emits itself on exit."""

    __slots__ = (
        "_tracer", "name", "span_id", "parent_id", "ts", "_started",
        "attrs", "_profile",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        profiler = tracer.profiler
        self._profile = profiler.begin() if profiler is not None else None
        self.ts = time.time()
        self._started = time.perf_counter()

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (recorded when the span closes)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close_span(self, time.perf_counter() - self._started)


class TraceBinding:
    """One active :meth:`Tracer.bind` scope; restores the prior scope on
    exit, so bindings nest like the spans they decorate."""

    __slots__ = ("_tracer", "_attrs", "_sink", "_saved")

    def __init__(
        self,
        tracer: "Tracer",
        attrs: Dict[str, Any],
        sink: Optional[List[Dict[str, Any]]],
    ) -> None:
        self._tracer = tracer
        self._attrs = attrs
        self._sink = sink
        self._saved: Optional[tuple] = None

    def __enter__(self) -> "TraceBinding":
        tracer = self._tracer
        self._saved = (tracer._ambient, tracer._collect)
        merged = dict(tracer._ambient)
        merged.update(self._attrs)
        tracer._ambient = merged
        if self._sink is not None:
            tracer._collect = self._sink
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        if self._saved is not None:
            self._tracer._ambient, self._tracer._collect = self._saved
            self._saved = None


class Tracer:
    """JSONL span emitter; see the module docstring.

    Parameters
    ----------
    sink:
        A writable text file object.  The tracer owns it only when built
        via :meth:`to_path` (then :meth:`close` closes it).
    producer:
        Free-text origin label stamped into the ``meta`` header.
    max_events:
        Size cap / rotation guard: after this many events have been
        written, further events are *counted but dropped*, and
        :meth:`close` appends a single ``truncated`` marker event naming
        the drop count — a huge run cannot grow a trace without bound.
        None (default) disables the cap.
    profiler:
        Optional :class:`~repro.obs.resources.SpanProfiler`; when set,
        every span is stamped with ``cpu_s`` (and ``mem_peak_kb`` when
        tracemalloc is tracing) as it closes.
    """

    enabled = True

    def __init__(
        self,
        sink: IO[str],
        producer: str = "repro",
        max_events: Optional[int] = None,
        profiler: Optional[Any] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be positive")
        self._sink = sink
        self._owns_sink = False
        self._stack: List[Span] = []
        self._next_id = 1
        #: ambient attrs stamped onto every opened span (see :meth:`bind`)
        self._ambient: Dict[str, Any] = {}
        #: optional list collecting closed span events for the active bind
        self._collect: Optional[List[Dict[str, Any]]] = None
        self.events_emitted = 0
        self.events_dropped = 0
        self.max_events = max_events
        self.profiler = profiler
        self._emit(
            {
                "v": SCHEMA_VERSION,
                "type": "meta",
                "ts": time.time(),
                "pid": os.getpid(),
                "producer": producer,
            }
        )

    @classmethod
    def to_path(
        cls,
        path: str,
        producer: str = "repro",
        max_events: Optional[int] = None,
        profiler: Optional[Any] = None,
    ) -> "Tracer":
        """Open ``path`` for writing and trace into it."""
        sink = open(path, "w", encoding="utf-8")
        tracer = cls(
            sink, producer=producer, max_events=max_events, profiler=profiler
        )
        tracer._owns_sink = True
        return tracer

    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a child span of the innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        if self._ambient:
            merged = dict(self._ambient)
            merged.update(attrs)
            attrs = merged
        span = Span(self, name, self._next_id, parent, dict(attrs))
        self._next_id += 1
        self._stack.append(span)
        return span

    def bind(
        self,
        sink: Optional[List[Dict[str, Any]]] = None,
        **attrs: Any,
    ) -> TraceBinding:
        """Scope ambient span context (a context manager).

        Every span opened while the binding is entered carries ``attrs``
        (explicit span attributes win on collision), and — when ``sink``
        is given — every span *closed* inside the scope appends its
        emitted event dict to that list, regardless of the trace-file
        event cap.  ``None``-valued attrs are dropped rather than
        stamped.  Bindings nest: an inner bind layers over (and on exit
        restores) the outer scope.
        """
        cleaned = {k: v for k, v in attrs.items() if v is not None}
        return TraceBinding(self, cleaned, sink)

    def emit_event(self, event_type: str, **fields: Any) -> None:
        """Emit a non-span event line (``progress`` reporters use this)."""
        payload: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "type": event_type,
            "ts": time.time(),
        }
        payload.update(_clean_attrs(fields))
        for key, value in self._ambient.items():
            payload.setdefault(key, value)
        self._emit(payload)

    def _close_span(self, span: Span, duration: float) -> None:
        if span._profile is not None and self.profiler is not None:
            span.attrs.update(self.profiler.end(span._profile))
        # exception unwinding may close an outer span while inner noop /
        # already-closed ids linger; pop everything above it
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        event = {
            "v": SCHEMA_VERSION,
            "type": "span",
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "ts": span.ts,
            "dur": duration,
            "attrs": _clean_attrs(span.attrs),
        }
        if self._collect is not None:
            self._collect.append(event)
        self._emit(event)

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.max_events is not None and self.events_emitted >= self.max_events:
            self.events_dropped += 1
            return
        self._sink.write(json.dumps(event, separators=(",", ":")) + "\n")
        self.events_emitted += 1

    def close(self) -> None:
        """Flush and (when owning the sink) close the output file."""
        if self.events_dropped:
            # bypass _emit: the marker must land even though the cap is hit
            self._sink.write(
                json.dumps(
                    {
                        "v": SCHEMA_VERSION,
                        "type": "truncated",
                        "ts": time.time(),
                        "dropped": self.events_dropped,
                        "max_events": self.max_events,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            self.events_dropped = 0
        try:
            self._sink.flush()
        except (OSError, ValueError):  # pragma: no cover - closed sink
            pass
        if self._owns_sink:
            try:
                self._sink.close()
            except OSError:  # pragma: no cover
                pass


class NoopSpan:
    """Shared do-nothing span; the disabled path's context manager."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        return None


class NoopTracer:
    """Disabled tracer: every span is the shared :data:`NOOP_SPAN`."""

    enabled = False
    events_emitted = 0
    events_dropped = 0
    max_events = None
    profiler = None

    __slots__ = ()

    def span(self, name: str, **attrs: Any) -> NoopSpan:
        return NOOP_SPAN

    def bind(
        self,
        sink: Optional[List[Dict[str, Any]]] = None,
        **attrs: Any,
    ) -> NoopSpan:
        return NOOP_SPAN

    def emit_event(self, event_type: str, **fields: Any) -> None:
        return None

    def close(self) -> None:
        return None


NOOP_SPAN = NoopSpan()
NOOP_TRACER = NoopTracer()
