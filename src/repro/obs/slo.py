"""Rolling-window SLO metrics for the serve query plane.

A cumulative :class:`~repro.obs.metrics.Histogram` answers "p99 since
the daemon started", but an operator paging on an SLO needs "p99 over
the last five minutes".  :class:`SloWindow` gives the windowed view with
the instruments that already exist: a ring of ``buckets`` epoch-stamped
slots, each holding one :class:`Histogram` (latency) plus plain counters
(queries, rejections, errors, cache hits/misses).  Each observation
lands in the slot for ``now // bucket_seconds``; a slot whose stored
epoch is stale is lazily reset on first touch, so rotation costs nothing
when the server is idle and there is no background thread to leak.

:meth:`SloWindow.snapshot` merges the live buckets: counts are summed,
latency moments (count/total/min/max/sumsq) combine exactly, and the
percentiles are nearest-rank over the *concatenated* reservoir samples
of the live buckets — a uniform-enough sample of the window, and the
only way to get a windowed tail without keeping every observation.

The clock is injectable (``clock=time.monotonic`` by default) so
rotation is unit-testable without sleeping.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .metrics import Histogram

__all__ = ["SloWindow"]

#: Default window: the "last five minutes" an on-call page talks about.
DEFAULT_WINDOW_SECONDS = 300.0

#: Default bucket count: 30-second resolution at the default window.
DEFAULT_BUCKETS = 10


class _Bucket:
    """One ring slot: an epoch stamp plus that interval's instruments."""

    __slots__ = (
        "epoch", "latency", "queries", "rejected", "errors",
        "cache_hits", "cache_misses",
    )

    def __init__(self) -> None:
        self.reset(-1)

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.latency = Histogram()
        self.queries = 0
        self.rejected = 0
        self.errors = 0
        self.cache_hits = 0
        self.cache_misses = 0


def _nearest_rank(ordered: List[float], p: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(p / 100.0 * len(ordered)) - 1))
    return float(ordered[rank])


class SloWindow:
    """Windowed p50/p95/p99 latency, QPS, rejection and cache-hit rates.

    All mutation goes through :meth:`observe` under one lock — the serve
    handlers call it once per query, which is nowhere near contention.
    """

    def __init__(
        self,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        buckets: int = DEFAULT_BUCKETS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if buckets < 1:
            raise ValueError("buckets must be positive")
        self.window_seconds = float(window_seconds)
        self.num_buckets = int(buckets)
        self.bucket_seconds = self.window_seconds / self.num_buckets
        self._clock = clock
        self._lock = threading.Lock()
        self._slots = [_Bucket() for _ in range(self.num_buckets)]
        self._started = clock()

    # ------------------------------------------------------------------

    def _bucket(self, now: float) -> _Bucket:
        epoch = int(now // self.bucket_seconds)
        slot = self._slots[epoch % self.num_buckets]
        if slot.epoch != epoch:
            slot.reset(epoch)
        return slot

    def observe(
        self,
        seconds: Optional[float] = None,
        rejected: bool = False,
        error: bool = False,
        cache_hits: int = 0,
        cache_misses: int = 0,
        now: Optional[float] = None,
    ) -> None:
        """Record one query outcome into the current bucket.

        ``rejected=True`` counts a shed query (no latency observed);
        otherwise the query counts as answered and ``seconds`` (when
        given) feeds the latency histogram.  ``error=True`` marks a
        query that raised after admission.
        """
        with self._lock:
            if now is None:
                now = self._clock()
            bucket = self._bucket(now)
            if rejected:
                bucket.rejected += 1
            else:
                bucket.queries += 1
                if seconds is not None:
                    bucket.latency.observe(seconds)
            if error:
                bucket.errors += 1
            bucket.cache_hits += cache_hits
            bucket.cache_misses += cache_misses

    # ------------------------------------------------------------------

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The merged windowed view (see the module docstring)."""
        with self._lock:
            if now is None:
                now = self._clock()
            current_epoch = int(now // self.bucket_seconds)
            oldest_epoch = current_epoch - self.num_buckets + 1
            live = [
                slot
                for slot in self._slots
                if oldest_epoch <= slot.epoch <= current_epoch
            ]
            queries = sum(slot.queries for slot in live)
            rejected = sum(slot.rejected for slot in live)
            errors = sum(slot.errors for slot in live)
            cache_hits = sum(slot.cache_hits for slot in live)
            cache_misses = sum(slot.cache_misses for slot in live)
            count = sum(slot.latency.count for slot in live)
            total = sum(slot.latency.total for slot in live)
            sumsq = sum(slot.latency.sumsq for slot in live)
            nonempty = [slot.latency for slot in live if slot.latency.count]
            minimum = min((h.min for h in nonempty), default=0.0)
            maximum = max((h.max for h in nonempty), default=0.0)
            samples: List[float] = []
            for histogram in nonempty:
                samples.extend(histogram.samples)
            samples.sort()
            # how much of the window has actually elapsed: a daemon ten
            # seconds old must not divide ten queries by five minutes
            covered = min(self.window_seconds, max(now - self._started, 0.0))
            covered = max(covered, 1e-9)
        mean = total / count if count else 0.0
        variance = sumsq / count - mean * mean if count else 0.0
        attempted = queries + rejected
        return {
            "window_seconds": self.window_seconds,
            "bucket_seconds": self.bucket_seconds,
            "covered_seconds": round(covered, 3),
            "queries": queries,
            "rejected": rejected,
            "errors": errors,
            "qps": round(queries / covered, 6),
            "rejection_rate": round(
                rejected / attempted, 6
            ) if attempted else 0.0,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_hit_rate": round(
                cache_hits / (cache_hits + cache_misses), 6
            ) if cache_hits + cache_misses else 0.0,
            "latency": {
                "count": count,
                "total": round(total, 9),
                "min": minimum,
                "max": maximum,
                "sumsq": sumsq,
                "stddev": round(
                    math.sqrt(variance) if variance > 0 else 0.0, 9
                ),
                "p50": round(_nearest_rank(samples, 50.0), 9),
                "p95": round(_nearest_rank(samples, 95.0), 9),
                "p99": round(_nearest_rank(samples, 99.0), 9),
            },
        }
