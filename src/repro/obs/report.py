"""Human-readable trace reports: indented span tree + top-N slowest.

``python -m repro.obs.report run.jsonl`` (or ``pincer obs report``)
renders a recorded JSONL trace as the tree the tracer's nesting implies,
one row per span with wall-clock, CPU and peak-memory columns (the latter
two filled in when the trace was recorded with ``--profile``)::

    span                            wall(s)    cpu(s)  mem_peak(kb)
    run algorithm=pincer-search      0.1620    0.1570         812.4
      pass k=1                       0.0450    0.0440         301.2
        count                        0.0390    0.0380         280.0
      ...

followed by the top-N slowest spans ranked by *self* time (wall-clock
minus direct children), which is where "where did the time go" questions
actually end.

A trace recorded by ``pincer serve --trace`` interleaves many queries
into one file; every span of a served query carries its ``request_id``
attribute.  ``--requests`` lists the ids present (with span counts and
wall-clock per request), and ``--request ID`` filters the tree down to
one query's spans.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .export import load_trace_events

__all__ = [
    "build_span_tree",
    "filter_request",
    "group_requests",
    "render_report",
    "render_requests",
]

#: span attrs worth showing inline in the tree label
_LABEL_ATTRS = ("algorithm", "k", "engine", "miner", "command", "database")


class SpanNode:
    """One span of the trace with resolved children."""

    __slots__ = ("event", "children")

    def __init__(self, event: Dict[str, Any]) -> None:
        self.event = event
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return self.event["name"]

    @property
    def dur(self) -> float:
        return float(self.event.get("dur", 0.0))

    @property
    def attrs(self) -> Dict[str, Any]:
        return self.event.get("attrs", {})

    @property
    def self_time(self) -> float:
        """Wall-clock not covered by direct children."""
        return max(0.0, self.dur - sum(child.dur for child in self.children))

    def label(self) -> str:
        extras = [
            "%s=%s" % (key, self.attrs[key])
            for key in _LABEL_ATTRS
            if key in self.attrs
        ]
        return self.name + ((" " + " ".join(extras)) if extras else "")


def build_span_tree(
    events: List[Dict[str, Any]],
) -> Tuple[List[SpanNode], List[SpanNode]]:
    """Resolve parent links; returns ``(roots, all nodes)`` in start order."""
    nodes = [
        SpanNode(event) for event in events if event.get("type") == "span"
    ]
    nodes.sort(key=lambda node: node.event.get("ts", 0.0))
    by_id = {node.event["span"]: node for node in nodes}
    roots: List[SpanNode] = []
    for node in nodes:
        parent = by_id.get(node.event.get("parent"))
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots, nodes


def filter_request(
    events: List[Dict[str, Any]], request_id: str
) -> List[Dict[str, Any]]:
    """Only the span events carrying ``request_id`` (plus non-span lines)."""
    return [
        event
        for event in events
        if event.get("type") != "span"
        or event.get("attrs", {}).get("request_id") == request_id
    ]


def group_requests(events: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Per-request summary of a serve trace, keyed by request id.

    Each entry reports the span count, the set of root span names (the
    ops the request ran), and the summed wall-clock of its root spans.
    """
    roots, nodes = build_span_tree(events)
    summaries: Dict[str, Dict[str, Any]] = {}
    for node in nodes:
        request_id = node.attrs.get("request_id")
        if not isinstance(request_id, str):
            continue
        summary = summaries.setdefault(
            request_id, {"spans": 0, "roots": [], "wall_s": 0.0, "ts": None}
        )
        summary["spans"] += 1
        if summary["ts"] is None or node.event.get("ts", 0.0) < summary["ts"]:
            summary["ts"] = node.event.get("ts", 0.0)
    for root in roots:
        request_id = root.attrs.get("request_id")
        if not isinstance(request_id, str) or request_id not in summaries:
            continue
        summaries[request_id]["roots"].append(root.name)
        summaries[request_id]["wall_s"] += root.dur
    return summaries


def render_requests(events: List[Dict[str, Any]]) -> str:
    """One row per request id found in the trace."""
    summaries = group_requests(events)
    if not summaries:
        return "no request-scoped spans in this trace"
    lines = ["%-28s %6s %10s  %s" % ("request", "spans", "wall(s)", "roots")]
    lines.append("-" * len(lines[0]))
    for request_id, summary in sorted(
        summaries.items(), key=lambda item: item[1]["ts"] or 0.0
    ):
        lines.append(
            "%-28s %6d %10.4f  %s"
            % (
                request_id,
                summary["spans"],
                summary["wall_s"],
                ",".join(summary["roots"]) or "-",
            )
        )
    return "\n".join(lines)


def _walk(node: SpanNode, depth: int, rows: List[Tuple[int, SpanNode]]) -> None:
    rows.append((depth, node))
    for child in node.children:
        _walk(child, depth + 1, rows)


def render_report(
    events: List[Dict[str, Any]], top: int = 10, max_rows: int = 200
) -> str:
    """Render the tree + top-N slowest-span sections as one string."""
    roots, nodes = build_span_tree(events)
    rows: List[Tuple[int, SpanNode]] = []
    for root in roots:
        _walk(root, 0, rows)

    lines: List[str] = []
    header = "%-44s %10s %10s %14s" % ("span", "wall(s)", "cpu(s)", "mem_peak(kb)")
    lines.append(header)
    lines.append("-" * len(header))
    shown = rows[:max_rows]
    for depth, node in shown:
        cpu = node.attrs.get("cpu_s")
        mem = node.attrs.get("mem_peak_kb")
        lines.append(
            "%-44s %10.4f %10s %14s"
            % (
                ("  " * depth + node.label())[:44],
                node.dur,
                ("%.4f" % cpu) if isinstance(cpu, (int, float)) else "-",
                ("%.1f" % mem) if isinstance(mem, (int, float)) else "-",
            )
        )
    if len(rows) > len(shown):
        lines.append("... %d more spans (raise --max-rows)" % (len(rows) - len(shown)))

    if nodes and top > 0:
        lines.append("")
        lines.append("top %d spans by self time:" % min(top, len(nodes)))
        ranked = sorted(nodes, key=lambda node: -node.self_time)[:top]
        for node in ranked:
            lines.append(
                "  %-30s self %8.4fs  total %8.4fs"
                % (node.label()[:30], node.self_time, node.dur)
            )

    truncated = [e for e in events if e.get("type") == "truncated"]
    if truncated:
        lines.append("")
        lines.append(
            "warning: trace truncated, %d events dropped"
            % sum(e.get("dropped", 0) for e in truncated)
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="pretty-print a JSONL trace as an indented span tree",
    )
    parser.add_argument("trace", help="JSONL trace file (--trace output)")
    parser.add_argument(
        "--top", type=int, default=10,
        help="how many slowest spans to rank (0 disables)",
    )
    parser.add_argument(
        "--max-rows", type=int, default=200,
        help="tree row cap for very large traces",
    )
    parser.add_argument(
        "--request", default=None, metavar="ID",
        help="only render spans of one serve request id",
    )
    parser.add_argument(
        "--requests", action="store_true",
        help="list the request ids present in the trace and exit",
    )
    args = parser.parse_args(argv)
    try:
        events = load_trace_events(args.trace)
    except (OSError, ValueError) as exc:
        sys.stderr.write("cannot read trace: %s\n" % exc)
        return 1
    if args.requests:
        sys.stdout.write(render_requests(events) + "\n")
        return 0
    if args.request is not None:
        events = filter_request(events, args.request)
    sys.stdout.write(
        render_report(events, top=args.top, max_rows=args.max_rows) + "\n"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
