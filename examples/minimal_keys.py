"""Minimal-key discovery via the pincer's two-way search.

Run with::

    python examples/minimal_keys.py

The paper's very first sentence lists "minimal keys" among the data
mining problems whose key component is frequent-set-style discovery.
The reduction (see ``repro/apps/keys.py``): "is NOT a key" is an
anti-monotone property of attribute sets, so the maximal non-keys are a
maximum "frequent" set — minable by the same bidirectional search, with a
predicate oracle standing in for support counting.  The minimal keys are
then the minimal hitting sets of the maximal non-keys' complements.
"""

import random

from repro.apps.keys import Relation, candidate_key_report, maximal_non_keys

COLUMNS = [
    "employee_id", "email", "first_name", "last_name",
    "department", "office", "badge_no",
]


def synthesise_employees(count=400, seed=21):
    """An HR table with two natural keys and plenty of redundancy."""
    rng = random.Random(seed)
    first_names = ["ada", "grace", "alan", "edsger", "barbara", "donald"]
    last_names = ["lovelace", "hopper", "turing", "dijkstra", "liskov"]
    departments = ["eng", "sales", "hr", "ops"]
    rows = []
    for employee_id in range(count):
        first = rng.choice(first_names)
        last = rng.choice(last_names)
        department = rng.choice(departments)
        rows.append((
            employee_id,                                  # key
            "%s.%s.%d@corp.example" % (first, last, employee_id),  # key
            first,
            last,
            department,
            "%s-%d" % (department, rng.randint(1, 3)),
            1000 + employee_id,                           # key
        ))
    return Relation(rows, column_names=COLUMNS)


def main():
    relation = synthesise_employees()
    print(candidate_key_report(relation))

    non_keys = maximal_non_keys(relation)
    longest = max(non_keys, key=len)
    print(
        "\nlargest non-key attribute set (%d of %d attributes): (%s)"
        % (len(longest), relation.arity, ", ".join(relation.names(longest)))
    )
    print(
        "every subset of it is also a non-key - %d sets the bidirectional\n"
        "search never had to test individually" % (2 ** len(longest) - 2)
    )


if __name__ == "__main__":
    main()
