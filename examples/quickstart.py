"""Quickstart: discover the maximum frequent set of a tiny basket database.

Run with::

    python examples/quickstart.py

Covers the core public API in ~40 lines: build a database, mine it with
Pincer-Search, inspect the maximal frequent itemsets, and answer frequency
questions without ever materialising the full frequent set.
"""

from repro import TransactionDatabase, pincer_search

# A grocery-store toy: items are ints (1=bread, 2=butter, 3=milk, 4=beer,
# 5=diapers).  Any iterable of int-iterables works.
BREAD, BUTTER, MILK, BEER, DIAPERS = 1, 2, 3, 4, 5
ITEM_NAMES = {1: "bread", 2: "butter", 3: "milk", 4: "beer", 5: "diapers"}

baskets = [
    [BREAD, BUTTER, MILK],
    [BREAD, BUTTER],
    [BREAD, BUTTER, MILK],
    [BEER, DIAPERS],
    [BEER, DIAPERS, BREAD],
    [BEER, DIAPERS],
    [MILK],
    [BREAD, BUTTER, MILK, BEER],
]


def names(itemset):
    return "{" + ", ".join(ITEM_NAMES[item] for item in itemset) + "}"


def main():
    db = TransactionDatabase(baskets)
    print("database: %d baskets over %d items" % (len(db), db.num_items))

    # minimum support 25% of the baskets
    result = pincer_search(db, min_support=0.25)

    print("\nmaximum frequent set (every maximal frequent itemset):")
    for member in result.sorted_mfs():
        print(
            "  %-28s support %.0f%%"
            % (names(member), 100 * result.support(member))
        )

    # The MFS answers frequency questions for ANY itemset - no extra pass:
    print("\nfrequency oracle:")
    for probe in ([BREAD, BUTTER], [BEER, MILK], [BEER, DIAPERS]):
        verdict = "frequent" if result.is_frequent(probe) else "infrequent"
        print("  %-28s -> %s" % (names(tuple(probe)), verdict))

    stats = result.stats
    print(
        "\n%d database passes, %d candidate itemsets counted"
        % (stats.num_passes, stats.total_candidates)
    )


if __name__ == "__main__":
    main()
