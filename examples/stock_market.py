"""The paper's stock-market motivation: long maximal itemsets in the wild.

Run with::

    python examples/stock_market.py

The paper's conclusion argues that the "maximal frequent itemsets are
short" assumption fails in important applications: "Prices of individual
stocks are frequently quite correlated with each other (the market as a
whole goes up or down).  Therefore, the discovered patterns may contain
many items (stocks) and the frequent itemsets are long.  Here, our
algorithm could be of great importance."

This example synthesises daily up-moves of a sector-structured market —
each trading day is a transaction whose items are the stocks that rose —
and mines the co-moving groups.  Sector membership plus market-wide
shocks produce maximal frequent itemsets spanning whole sectors, exactly
the regime where Apriori drowns in ``2^l`` subsets and Pincer-Search
finds the pattern in a handful of passes.
"""

import random
import time

from repro import Apriori, PincerSearch, TransactionDatabase
from repro.core.result import MiningTimeout

NUM_DAYS = 1000
SECTORS = {
    "tech": list(range(0, 14)),
    "banks": list(range(14, 25)),
    "energy": list(range(25, 33)),
    "retail": list(range(33, 40)),
}
SECTOR_UP_PROB = 0.35      # sector-wide rally days
IDIOSYNCRATIC = 0.05       # a stock rising on its own
FOLLOW_PROB = 0.985        # a stock following its rallying sector
MIN_SUPPORT = 0.25


def synthesise_market(seed=11):
    rng = random.Random(seed)
    days = []
    for _ in range(NUM_DAYS):
        risers = set()
        for stocks in SECTORS.values():
            sector_rally = rng.random() < SECTOR_UP_PROB
            for stock in stocks:
                if sector_rally and rng.random() < FOLLOW_PROB:
                    risers.add(stock)
                elif rng.random() < IDIOSYNCRATIC:
                    risers.add(stock)
        days.append(sorted(risers))
    return TransactionDatabase(days, universe=range(40))


def sector_of(stock):
    for name, stocks in SECTORS.items():
        if stock in stocks:
            return name
    return "?"


def describe(itemset):
    counts = {}
    for stock in itemset:
        counts[sector_of(stock)] = counts.get(sector_of(stock), 0) + 1
    body = ", ".join("%s x%d" % pair for pair in sorted(counts.items()))
    return "%2d stocks (%s)" % (len(itemset), body)


def main():
    db = synthesise_market()
    print(
        "%d trading days, %d stocks, avg %.1f risers/day"
        % (len(db), db.num_items, db.average_transaction_size())
    )

    started = time.perf_counter()
    result = PincerSearch().mine(db, MIN_SUPPORT)
    pincer_seconds = time.perf_counter() - started
    stats = result.stats
    print(
        "\npincer-search: %.2fs, %d passes, %d candidates, |MFS| = %d"
        % (pincer_seconds, stats.num_passes, stats.total_candidates,
           len(result.mfs))
    )

    print("\nlargest co-moving groups (maximal frequent itemsets):")
    for member in sorted(result.mfs, key=len, reverse=True)[:5]:
        print(
            "  %s  on %.0f%% of days"
            % (describe(member), 100 * result.support(member))
        )

    longest = result.longest_maximal()
    print(
        "\nthe longest group has %d stocks -> it alone implies 2^%d - 2 = "
        "%d frequent itemsets that Apriori would count explicitly"
        % (len(longest), len(longest), 2 ** len(longest) - 2)
    )

    budget = max(20 * pincer_seconds, 10.0)
    try:
        started = time.perf_counter()
        Apriori().mine(db, MIN_SUPPORT, time_budget=budget)
        print("apriori finished in %.2fs" % (time.perf_counter() - started))
    except MiningTimeout as timeout:
        print(
            "apriori: gave up after %.1fs (> %.0fx pincer) with %d passes done"
            % (timeout.seconds, timeout.seconds / pincer_seconds,
               timeout.stats.num_passes)
        )


if __name__ == "__main__":
    main()
