"""Market-basket mining on IBM Quest synthetic data, plus rule generation.

Run with::

    python examples/market_basket.py

Reproduces the paper's end-to-end workflow on a laptop-sized instance of
the benchmark family:

1. generate a ``T10.I4`` database with the Quest reimplementation;
2. mine the maximum frequent set with Pincer-Search and with Apriori on
   the same substrate, comparing passes and candidate counts;
3. generate association rules straight from the MFS — the paper's
   Section 2.1 strategy ("all one needs to know is the support of the
   maximal frequent itemsets and of the itemsets 'a little' shorter").
"""

from repro import Apriori, PincerSearch, QuestConfig, QuestGenerator
from repro.rules import interesting_rules, rules_from_mfs

CONFIG = QuestConfig(
    num_transactions=4000,
    avg_transaction_size=10,
    avg_pattern_size=4,
    num_patterns=40,      # concentrated - patterns cluster
    num_items=200,
    seed=7,
)
MIN_SUPPORT = 0.03        # 3 percent
MIN_CONFIDENCE = 0.8


def main():
    generator = QuestGenerator(CONFIG)
    db = generator.generate()
    print(
        "generated %s: %d transactions, avg size %.1f"
        % (CONFIG.name, len(db), db.average_transaction_size())
    )

    results = {}
    for miner in (PincerSearch(), Apriori()):
        result = miner.mine(db, MIN_SUPPORT)
        results[result.algorithm] = result
        stats = result.stats
        print(
            "%-14s |MFS| = %4d  longest = %2d  passes = %2d  "
            "candidates = %6d"
            % (
                result.algorithm,
                len(result.mfs),
                len(result.longest_maximal() or ()),
                stats.num_passes,
                stats.total_candidates,
            )
        )

    pincer = results["pincer-search"]
    assert pincer.mfs == results["apriori"].mfs, "miners must agree"

    found_top_down = pincer.stats.total_maximal_found_in_mfcs
    print(
        "\n%d of %d maximal itemsets were discovered top-down (in the MFCS)"
        % (found_top_down, len(pincer.mfs))
    )

    # Stage 2: rules from the MFS with one extra counting pass.
    rules = rules_from_mfs(db, pincer, min_confidence=MIN_CONFIDENCE, depth=2)
    best = interesting_rules(rules, min_lift=1.5, top=10)
    print(
        "\ntop association rules (confidence >= %.0f%%, lift >= 1.5):"
        % (100 * MIN_CONFIDENCE)
    )
    for rule in best:
        print("  %s  lift=%.1f" % (rule, rule.lift))


if __name__ == "__main__":
    main()
