"""Episode-style mining: frequent event combinations in a log sequence.

Run with::

    python examples/episodes.py

The paper lists episode discovery (Mannila & Toivonen) among the problems
whose key component is frequent-itemset discovery, and names it first
among planned applications ("the discovery of ... episodes").  Following
that reduction, a (parallel) episode is a set of event types that occur
together within a time window; sliding a window over the event sequence
and treating each window's event-type set as a transaction turns episode
discovery into exactly the problem Pincer-Search solves — the maximal
frequent windows are the maximal episodes.
"""

import random

from repro import TransactionDatabase, pincer_search
from repro.rules import rules_from_mfs

EVENT_TYPES = {
    0: "login", 1: "page_view", 2: "search", 3: "add_to_cart",
    4: "checkout", 5: "payment", 6: "error_500", 7: "retry",
    8: "support_chat", 9: "logout",
}

#: generative "sessions": weighted episode templates planted in the stream
TEMPLATES = [
    ((0, 1, 2), 0.35),             # browse
    ((0, 1, 2, 3), 0.25),          # shop
    ((0, 1, 2, 3, 4, 5), 0.20),    # purchase funnel
    ((6, 7), 0.12),                # failure + retry
    ((6, 7, 8), 0.08),             # failure escalates to support
]
WINDOW = 8
MIN_SUPPORT = 0.05


def synthesise_event_stream(length=6000, seed=3):
    rng = random.Random(seed)
    cumulative, total = [], 0.0
    for template, weight in TEMPLATES:
        total += weight
        cumulative.append((total, template))
    stream = []
    while len(stream) < length:
        point = rng.random() * total
        template = next(t for threshold, t in cumulative if point <= threshold)
        episode = [event for event in template if rng.random() < 0.9]
        rng.shuffle(episode)
        stream.extend(episode)
        if rng.random() < 0.35:
            stream.append(rng.randrange(len(EVENT_TYPES)))  # noise event
    return stream[:length]


def windows_as_transactions(stream, window=WINDOW):
    """Each sliding window's set of event types is one transaction."""
    return TransactionDatabase(
        [
            set(stream[start:start + window])
            for start in range(0, len(stream) - window + 1)
        ],
        universe=range(len(EVENT_TYPES)),
    )


def names(itemset):
    return "{" + ", ".join(EVENT_TYPES[event] for event in itemset) + "}"


def main():
    stream = synthesise_event_stream()
    db = windows_as_transactions(stream)
    print(
        "%d events -> %d windows of %d events"
        % (len(stream), len(db), WINDOW)
    )

    result = pincer_search(db, MIN_SUPPORT)
    print(
        "\nmaximal episodes (window support >= %.0f%%), %d passes:"
        % (100 * MIN_SUPPORT, result.stats.num_passes)
    )
    for member in sorted(result.mfs, key=len, reverse=True):
        print(
            "  %-55s %.1f%%"
            % (names(member), 100 * result.support(member))
        )

    # "episode rules": which event combinations predict which follow-ups
    rules = rules_from_mfs(db, result, min_confidence=0.9, depth=2)
    print("\nstrong episode rules (confidence >= 90%):")
    for rule in rules[:8]:
        print(
            "  %s => %s  (conf %.0f%%)"
            % (names(rule.antecedent), names(rule.consequent),
               100 * rule.confidence)
        )


if __name__ == "__main__":
    main()
