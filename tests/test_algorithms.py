"""Tests for the baseline miners (repro.algorithms)."""

import pytest

from repro.algorithms.apriori import Apriori, apriori
from repro.algorithms.brute_force import (
    brute_force,
    brute_force_frequents,
    brute_force_mfs,
)
from repro.algorithms.topdown import TopDown, top_down
from repro.core.result import MiningTimeout
from repro.db.counting import get_counter
from repro.db.transaction_db import TransactionDatabase


def toy_db():
    return TransactionDatabase([[1, 2, 3], [1, 2, 3], [1, 2], [3, 4]])


class TestBruteForce:
    def test_frequents_with_supports(self):
        frequents = brute_force_frequents(toy_db(), 0.5)
        assert frequents[(1, 2)] == 3
        assert frequents[(1, 2, 3)] == 2
        assert (3, 4) not in frequents  # support 1 < 2

    def test_mfs(self):
        assert brute_force_mfs(toy_db(), 0.5) == {(1, 2, 3)}

    def test_result_object(self):
        result = brute_force(toy_db(), 0.5)
        assert result.algorithm == "brute-force"
        assert result.is_frequent((1, 3))
        assert not result.is_frequent((4,))

    def test_empty_database(self):
        assert brute_force_frequents(TransactionDatabase([]), min_count=1) == {}

    def test_refuses_oversized_transactions(self):
        db = TransactionDatabase([list(range(40))])
        with pytest.raises(ValueError):
            brute_force(db, 0.5)


class TestApriori:
    def test_mfs_matches_brute_force(self):
        assert set(apriori(toy_db(), 0.5).mfs) == {(1, 2, 3)}

    def test_counts_every_frequent_itemset(self):
        # Apriori explicitly discovers ALL frequent itemsets (the cost
        # the paper's algorithm avoids)
        result = apriori(toy_db(), 0.5)
        truth = brute_force_frequents(toy_db(), 0.5)
        for itemset_, count in truth.items():
            assert result.supports[itemset_] == count

    def test_frequent_itemsets_helper(self):
        frequents = Apriori().frequent_itemsets(toy_db(), 0.5)
        assert frequents == brute_force_frequents(toy_db(), 0.5)

    def test_one_pass_per_level(self):
        result = apriori(toy_db(), 0.5)
        # levels 1..3 exist, plus C_4 is empty: exactly 3 passes
        assert result.stats.num_passes == 3

    def test_pass_accounting_against_counter(self):
        counter = get_counter("bitmap")
        result = Apriori().mine(toy_db(), 0.5, counter=counter)
        assert counter.passes == result.stats.num_passes

    def test_no_mfcs_candidates_ever(self):
        result = apriori(toy_db(), 0.5)
        assert all(s.mfcs_candidates == 0 for s in result.stats.passes)

    def test_time_budget_raises_mining_timeout(self):
        db = TransactionDatabase([[1, 2, 3, 4, 5, 6, 7, 8]] * 4)
        with pytest.raises(MiningTimeout) as excinfo:
            Apriori().mine(db, 0.5, time_budget=0.0)
        assert excinfo.value.algorithm == "apriori"
        assert excinfo.value.stats.num_passes == 0

    def test_generous_budget_finishes(self):
        result = Apriori().mine(toy_db(), 0.5, time_budget=60.0)
        assert set(result.mfs) == {(1, 2, 3)}

    def test_empty_database(self):
        result = apriori(TransactionDatabase([]), 0.5)
        assert result.mfs == frozenset()


class TestTopDown:
    def test_mfs_matches_brute_force(self):
        assert set(top_down(toy_db(), 0.5).mfs) == {(1, 2, 3)}

    def test_counts_only_frontier_itemsets(self):
        result = top_down(toy_db(), 0.5)
        # the top-down miner never counts bottom-up candidates
        assert all(s.bottom_up_candidates == 0 for s in result.stats.passes)
        assert all(s.mfcs_candidates > 0 for s in result.stats.passes)

    def test_fast_when_universe_is_frequent(self):
        db = TransactionDatabase([[1, 2, 3, 4, 5]] * 3)
        result = top_down(db, 1.0)
        assert set(result.mfs) == {(1, 2, 3, 4, 5)}
        assert result.stats.num_passes == 1

    def test_frontier_guard_raises(self):
        db = TransactionDatabase(
            [[i] for i in range(1, 25)], universe=range(1, 25)
        )
        with pytest.raises(RuntimeError, match="frontier exploded"):
            TopDown(max_frontier=10).mine(db, 1.0)

    def test_empty_database(self):
        result = top_down(TransactionDatabase([]), 0.5)
        assert result.mfs == frozenset()

    def test_all_items_infrequent(self):
        db = TransactionDatabase([[1], [2], [3], [4]])
        result = top_down(db, 0.9)
        assert result.mfs == frozenset()


class TestCrossAlgorithmAgreement:
    CASES = [
        ([[1, 2], [2, 3], [1, 3], [1, 2, 3]], 0.5),
        ([[1], [1, 2], [1, 2, 3], [1, 2, 3, 4]], 0.25),
        ([[1, 2, 3, 4, 5]] * 5 + [[6]], 0.5),
        ([[2 * i, 2 * i + 1] for i in range(5)], 0.1),
    ]

    @pytest.mark.parametrize("transactions,minsup", CASES)
    def test_all_miners_agree(self, transactions, minsup):
        from repro.core.pincer import pincer_search

        db = TransactionDatabase(transactions)
        truth = brute_force_mfs(db, minsup)
        assert set(apriori(db, minsup).mfs) == truth
        assert set(top_down(db, minsup).mfs) == truth
        assert set(pincer_search(db, minsup).mfs) == truth
        assert set(pincer_search(db, minsup, adaptive=False).mfs) == truth
