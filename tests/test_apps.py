"""Tests for the application layer (repro.apps): keys, episodes, stocks."""

import random
from itertools import combinations

import pytest

from repro.apps.episodes import (
    Episode,
    Event,
    episode_rules,
    mine_episodes,
    sequence_to_events,
    windows,
    windows_database,
)
from repro.apps.keys import (
    Relation,
    candidate_key_report,
    maximal_non_keys,
    minimal_keys,
)
from repro.apps.stocks import (
    DOWN,
    UP,
    co_movement_groups,
    decode_item,
    movement_item,
    movements_database,
    returns_from_prices,
)


# ----------------------------------------------------------------------
# minimal keys
# ----------------------------------------------------------------------


class TestRelation:
    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            Relation([(1, 2), (1,)])

    def test_is_key(self):
        relation = Relation([(1, "a"), (1, "b"), (2, "a")])
        assert not relation.is_key([0])
        assert not relation.is_key([1])
        assert relation.is_key([0, 1])

    def test_empty_attribute_set_key_only_for_tiny_relations(self):
        assert Relation([(1,)]).is_key([])
        assert not Relation([(1,), (2,)]).is_key([])

    def test_default_column_names(self):
        relation = Relation([(1, 2)])
        assert relation.names([1, 0]) == ("col0", "col1")

    def test_named_columns(self):
        relation = Relation([(1, 2)], column_names=["id", "v"])
        assert relation.names([1]) == ("v",)


def brute_minimal_keys(relation):
    universe = range(relation.arity)
    keys = [
        attributes
        for size in range(relation.arity + 1)
        for attributes in combinations(universe, size)
        if relation.is_key(attributes)
    ]
    return {
        key
        for key in keys
        if not any(set(other) < set(key) for other in keys)
    }


class TestMinimalKeys:
    def test_textbook_relation(self):
        relation = Relation(
            [
                ("alice", 30, "nyc"),
                ("bob", 30, "nyc"),
                ("alice", 31, "sfo"),
            ],
            column_names=["name", "age", "city"],
        )
        assert minimal_keys(relation) == brute_minimal_keys(relation)

    def test_all_singletons_keys(self):
        relation = Relation([(1, "a"), (2, "b")])
        assert minimal_keys(relation) == {(0,), (1,)}

    def test_no_key_exists_with_duplicate_rows(self):
        relation = Relation([(1, 2), (1, 2)])
        assert minimal_keys(relation) == set()
        assert maximal_non_keys(relation) == {(0, 1)}

    def test_single_row_relation_has_empty_key(self):
        assert minimal_keys(Relation([(1, 2)])) == {()}

    def test_randomised_against_brute_force(self):
        rng = random.Random(8)
        for trial in range(40):
            arity = rng.randint(1, 5)
            rows = [
                tuple(rng.randint(0, 2) for _ in range(arity))
                for _ in range(rng.randint(1, 10))
            ]
            relation = Relation(rows)
            assert minimal_keys(relation) == brute_minimal_keys(relation), (
                trial, rows,
            )

    def test_report_mentions_key_columns(self):
        relation = Relation(
            [(1, "x"), (2, "x")], column_names=["id", "group"]
        )
        report = candidate_key_report(relation)
        assert "1 minimal key" in report
        assert "(id)" in report


# ----------------------------------------------------------------------
# episodes
# ----------------------------------------------------------------------


class TestWindows:
    def test_sequence_to_events(self):
        events = sequence_to_events([5, 7])
        assert events == [Event(0, 5), Event(1, 7)]

    def test_window_count_matches_winepi(self):
        # width w over times [0, n-1]: n + w - 1 windows
        events = sequence_to_events([1, 2, 3, 4])
        assert len(windows(events, 2)) == 5

    def test_window_contents(self):
        events = sequence_to_events([1, 2, 3])
        assert windows(events, 2) == [
            frozenset({1}),
            frozenset({1, 2}),
            frozenset({2, 3}),
            frozenset({3}),
        ]

    def test_step_skips_windows(self):
        events = sequence_to_events([1, 2, 3, 4])
        assert len(windows(events, 2, step=2)) == 3

    def test_gap_produces_empty_windows(self):
        events = [Event(0, 1), Event(10, 2)]
        window_sets = windows(events, 2)
        assert frozenset() in window_sets

    def test_validation(self):
        with pytest.raises(ValueError):
            windows([], 0)
        assert windows([], 3) == []


class TestMineEpisodes:
    def sessions(self):
        # plant the episode {1,2,3} repeatedly, with noise events 7..9
        rng = random.Random(2)
        stream = []
        for _ in range(120):
            block = [1, 2, 3]
            rng.shuffle(block)
            stream.extend(block)
            stream.append(rng.choice([7, 8, 9]))
        return sequence_to_events(stream)

    def test_planted_episode_is_found_maximal(self):
        episodes = mine_episodes(self.sessions(), width=4, min_support=0.4)
        assert episodes, "planted episode must be frequent"
        assert episodes[0].event_types == (1, 2, 3)
        assert episodes[0].support >= 0.4

    def test_support_is_window_fraction(self):
        events = self.sessions()
        episodes = mine_episodes(events, width=4, min_support=0.4)
        db = windows_database(events, 4)
        top = episodes[0]
        assert top.window_count == db.support_count(top.event_types)
        assert top.support == pytest.approx(
            top.window_count / len(db)
        )

    def test_empty_sequence(self):
        assert mine_episodes([], width=3, min_support=0.5) == []

    def test_episode_rules_confident(self):
        rules = episode_rules(
            self.sessions(), width=4, min_support=0.4, min_confidence=0.8
        )
        assert rules
        for antecedent, consequent, confidence in rules:
            assert confidence >= 0.8
            assert set(antecedent).isdisjoint(consequent)


# ----------------------------------------------------------------------
# stocks
# ----------------------------------------------------------------------


class TestStockReduction:
    def test_returns_from_prices(self):
        assert returns_from_prices([100.0, 110.0, 99.0]) == pytest.approx(
            [0.1, -0.1]
        )

    def test_returns_reject_nonpositive_prices(self):
        with pytest.raises(ValueError):
            returns_from_prices([100.0, 0.0])

    def test_item_encoding_round_trip(self):
        for instrument in (0, 3, 17):
            for direction in (UP, DOWN):
                assert decode_item(
                    movement_item(instrument, direction)
                ) == (instrument, direction)

    def test_movement_item_validates_direction(self):
        with pytest.raises(ValueError):
            movement_item(1, 2)

    def test_movements_database_unsigned(self):
        prices = {0: [100, 110, 105], 1: [50, 49, 60]}
        db = movements_database(prices)
        assert len(db) == 2
        assert db[0] == frozenset({0})        # only stock 0 rose
        assert db[1] == frozenset({1})        # only stock 1 rose

    def test_movements_database_signed(self):
        prices = {0: [100, 110], 1: [50, 49]}
        db = movements_database(prices, signed=True)
        assert db[0] == frozenset(
            {movement_item(0, UP), movement_item(1, DOWN)}
        )

    def test_alignment_validated(self):
        with pytest.raises(ValueError):
            movements_database({0: [1.0, 2.0], 1: [1.0]})

    def test_degenerate_inputs(self):
        assert len(movements_database({})) == 0
        assert len(movements_database({0: [100.0]})) == 0


class TestCoMovement:
    def correlated_prices(self, seed=5, periods=300):
        rng = random.Random(seed)
        prices = {i: [100.0] for i in range(6)}
        for _ in range(periods):
            market = rng.choice([-1, 1])
            for instrument in range(6):
                if instrument < 4:          # the correlated block
                    direction = market if rng.random() < 0.95 else -market
                else:                       # independent stocks
                    direction = rng.choice([-1, 1])
                last = prices[instrument][-1]
                prices[instrument].append(last * (1 + 0.01 * direction))
        return prices

    def test_correlated_block_is_a_maximal_group(self):
        groups = co_movement_groups(
            self.correlated_prices(), min_support=0.35
        )
        assert groups
        assert set(groups[0].instruments()) == {0, 1, 2, 3}

    def test_signed_mining_finds_the_down_block_too(self):
        groups = co_movement_groups(
            self.correlated_prices(), min_support=0.35, signed=True
        )
        directions = {
            frozenset(group.members)
            for group in groups
            if set(group.instruments()) == {0, 1, 2, 3}
        }
        ups = frozenset((i, UP) for i in range(4))
        downs = frozenset((i, DOWN) for i in range(4))
        assert ups in directions
        assert downs in directions

    def test_empty_market(self):
        assert co_movement_groups({}, min_support=0.5) == []
