"""Tests for the Partition baseline (repro.algorithms.partition)."""

import random

import pytest

from repro.algorithms.brute_force import brute_force_mfs
from repro.algorithms.partition import PartitionMiner, partition_mine
from repro.db.counting import get_counter
from repro.db.transaction_db import TransactionDatabase


def toy_db():
    return TransactionDatabase(
        [[1, 2, 3]] * 6 + [[1, 2]] * 2 + [[4, 5]] * 4
    )


class TestPartitionMiner:
    def test_matches_brute_force_on_toy(self):
        result = partition_mine(toy_db(), 0.3)
        assert set(result.mfs) == brute_force_mfs(toy_db(), 0.3)

    def test_exactly_two_logical_passes(self):
        result = partition_mine(toy_db(), 0.3)
        assert result.stats.num_passes == 2

    def test_single_partition_degenerates_to_apriori_plus_verify(self):
        result = partition_mine(toy_db(), 0.3, num_partitions=1)
        assert set(result.mfs) == brute_force_mfs(toy_db(), 0.3)

    def test_more_partitions_than_transactions(self):
        db = TransactionDatabase([[1, 2], [1, 2], [3]])
        result = partition_mine(db, 0.5, num_partitions=50)
        assert set(result.mfs) == brute_force_mfs(db, 0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PartitionMiner(num_partitions=0)

    def test_randomised_exactness(self):
        rng = random.Random(12)
        for trial in range(40):
            n = rng.randint(2, 8)
            db = TransactionDatabase(
                [
                    [i for i in range(1, n + 1) if rng.random() < 0.5]
                    for _ in range(rng.randint(4, 30))
                ],
                universe=range(1, n + 1),
            )
            minsup = rng.choice([0.15, 0.3, 0.5])
            partitions = rng.choice([1, 2, 3, 5])
            result = partition_mine(db, minsup, num_partitions=partitions)
            assert set(result.mfs) == brute_force_mfs(db, minsup), trial

    def test_skewed_partitions_still_exact(self):
        # all occurrences of the pattern concentrated in one partition
        db = TransactionDatabase([[1, 2]] * 5 + [[3]] * 15)
        result = partition_mine(db, 0.25, num_partitions=4)
        assert set(result.mfs) == brute_force_mfs(db, 0.25)

    def test_phase2_counts_are_global(self):
        result = partition_mine(toy_db(), 0.3)
        for member in result.mfs:
            assert result.supports[member] == toy_db().support_count(member)

    def test_union_candidates_superset_of_global_frequents(self):
        db = toy_db()
        counter = get_counter("bitmap")
        result = PartitionMiner(num_partitions=3).mine(
            db, 0.3, counter=counter
        )
        truth = brute_force_mfs(db, 0.3)
        # every truly frequent maximal itemset was in the verified union
        for member in truth:
            assert member in result.supports
