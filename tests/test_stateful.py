"""Model-based stateful tests (hypothesis.stateful) for mutable cores.

Two state machines drive the mutable data structures through arbitrary
operation sequences and compare them against trivially-correct models:

* :class:`CoverIndexMachine` — CoverIndex vs a plain list + linear scans;
* :class:`MfcsMachine` — the MFCS under arbitrary exclude/add sequences
  vs the from-scratch reconstruction (maximal sets not covering any
  excluded itemset), which is what Definition 1 prescribes.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.cover import CoverIndex
from repro.core.itemset import is_subset
from repro.core.lattice import is_antichain, maximal_elements
from repro.core.mfcs import MFCS

itemsets = st.builds(
    tuple, st.frozensets(st.integers(1, 7), min_size=1, max_size=4).map(sorted)
)


class CoverIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = CoverIndex()
        self.model = set()

    @rule(member=itemsets)
    def add(self, member):
        added = self.index.add(member)
        assert added == (member not in self.model)
        self.model.add(member)

    @rule(member=itemsets)
    def discard(self, member):
        removed = self.index.discard(member)
        assert removed == (member in self.model)
        self.model.discard(member)

    @rule(probe=itemsets)
    def query_covers(self, probe):
        expected = any(is_subset(probe, member) for member in self.model)
        assert self.index.covers(probe) == expected

    @rule(probe=itemsets)
    def query_supersets(self, probe):
        expected = sorted(
            member for member in self.model if is_subset(probe, member)
        )
        assert sorted(self.index.supersets_of(probe)) == expected

    @invariant()
    def size_matches(self):
        assert len(self.index) == len(self.model)
        assert sorted(self.index) == sorted(self.model)


class MfcsMachine(RuleBasedStateMachine):
    """Drive MFCS.exclude and compare with the declarative reconstruction.

    Model: after excluding the family ``E`` from universe ``U``, the MFCS
    must equal the maximal subsets of ``U`` containing no member of ``E``.
    Reconstruction enumerates candidates as ``U`` minus one item of each
    possible "conflict cover" — here we recompute bottom-up from the
    definition using the brute-force predicate miner.
    """

    UNIVERSE = tuple(range(1, 7))

    def __init__(self):
        super().__init__()
        self.mfcs = MFCS.for_universe(self.UNIVERSE)
        self.excluded = []

    @rule(infrequent=st.builds(
        tuple,
        st.frozensets(st.integers(1, 6), min_size=1, max_size=3).map(sorted),
    ))
    def exclude(self, infrequent):
        self.mfcs.exclude(infrequent)
        self.excluded.append(infrequent)

    @invariant()
    def matches_declarative_reconstruction(self):
        from repro.core.predicate import brute_force_maximal_satisfying_sets

        expected = brute_force_maximal_satisfying_sets(
            self.UNIVERSE,
            lambda candidate: not any(
                is_subset(bad, candidate) for bad in self.excluded
            ),
        )
        assert self.mfcs.elements == expected

    @invariant()
    def antichain(self):
        assert is_antichain(self.mfcs.elements)


CoverIndexMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
MfcsMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=15, deadline=None
)

TestCoverIndexMachine = CoverIndexMachine.TestCase
TestMfcsMachine = MfcsMachine.TestCase
