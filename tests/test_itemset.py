"""Unit tests for the itemset algebra (repro.core.itemset)."""

import importlib

import pytest

# repro.core re-exports the itemset() *function*, which shadows the module
# attribute of the same name; load the module itself explicitly.
it = importlib.import_module("repro.core.itemset")


class TestConstruction:
    def test_itemset_sorts_and_dedupes(self):
        assert it.itemset([3, 1, 2, 3, 1]) == (1, 2, 3)

    def test_itemset_of_empty_iterable(self):
        assert it.itemset([]) == ()

    def test_is_canonical_accepts_sorted_distinct(self):
        assert it.is_canonical((1, 2, 5))
        assert it.is_canonical(())
        assert it.is_canonical((7,))

    def test_is_canonical_rejects_unsorted(self):
        assert not it.is_canonical((2, 1))

    def test_is_canonical_rejects_duplicates(self):
        assert not it.is_canonical((1, 1, 2))

    def test_validate_passes_canonical_through(self):
        assert it.validate([1, 2, 3]) == (1, 2, 3)

    def test_validate_raises_on_noncanonical(self):
        with pytest.raises(ValueError):
            it.validate((3, 2))


class TestSetAlgebra:
    def test_union(self):
        assert it.union((1, 3), (2, 3)) == (1, 2, 3)

    def test_union_with_empty(self):
        assert it.union((), (2,)) == (2,)

    def test_difference(self):
        assert it.difference((1, 2, 3, 4), (2, 4)) == (1, 3)

    def test_difference_disjoint(self):
        assert it.difference((1, 2), (3,)) == (1, 2)

    def test_intersection(self):
        assert it.intersection((1, 2, 3), (2, 3, 4)) == (2, 3)

    def test_without_item(self):
        assert it.without_item((1, 2, 3), 2) == (1, 3)

    def test_without_missing_item_is_identity(self):
        assert it.without_item((1, 2, 3), 9) == (1, 2, 3)


class TestSubsetTests:
    def test_is_subset_basic(self):
        assert it.is_subset((1, 3), (1, 2, 3))
        assert not it.is_subset((1, 4), (1, 2, 3))

    def test_empty_is_subset_of_everything(self):
        assert it.is_subset((), ())
        assert it.is_subset((), (1,))

    def test_equal_sets_are_subsets(self):
        assert it.is_subset((1, 2), (1, 2))

    def test_longer_is_never_subset(self):
        assert not it.is_subset((1, 2, 3), (1, 2))

    def test_is_proper_subset(self):
        assert it.is_proper_subset((1,), (1, 2))
        assert not it.is_proper_subset((1, 2), (1, 2))

    def test_is_superset_mirrors_is_subset(self):
        assert it.is_superset((1, 2, 3), (2,))
        assert not it.is_superset((2,), (1, 2, 3))

    def test_is_subset_of_any(self):
        assert it.is_subset_of_any((1, 2), [(3,), (1, 2, 4)])
        assert not it.is_subset_of_any((1, 2), [(3,), (2, 4)])

    def test_is_superset_of_any(self):
        assert it.is_superset_of_any((1, 2, 3), [(9,), (2, 3)])
        assert not it.is_superset_of_any((1, 2, 3), [(4,)])

    def test_is_subset_agrees_with_python_sets_on_samples(self):
        samples = [(), (1,), (2, 4), (1, 2, 3), (2, 3, 5), (1, 5)]
        for small in samples:
            for large in samples:
                assert it.is_subset(small, large) == (
                    set(small) <= set(large)
                )


class TestEnumeration:
    def test_k_subsets_in_lexicographic_order(self):
        assert list(it.k_subsets((1, 2, 3), 2)) == [(1, 2), (1, 3), (2, 3)]

    def test_k_subsets_full_length(self):
        assert list(it.k_subsets((1, 2), 2)) == [(1, 2)]

    def test_proper_subsets_count(self):
        # 2^3 - 2 non-trivial subsets of a 3-itemset (paper Section 1)
        assert len(list(it.proper_subsets((1, 2, 3)))) == 6

    def test_all_subsets_includes_empty_and_self(self):
        subsets = list(it.all_subsets((1, 2)))
        assert () in subsets and (1, 2) in subsets
        assert len(subsets) == 4

    def test_immediate_subsets(self):
        assert list(it.immediate_subsets((1, 2, 3))) == [
            (2, 3), (1, 3), (1, 2),
        ]

    def test_immediate_subsets_of_singleton(self):
        assert list(it.immediate_subsets((7,))) == [()]


class TestPrefixLogic:
    def test_prefix(self):
        assert it.prefix((1, 2, 3, 4), 2) == (1, 2)

    def test_share_prefix_true(self):
        assert it.share_prefix((1, 2, 3), (1, 2, 4), 2)

    def test_share_prefix_false(self):
        assert not it.share_prefix((1, 2, 3), (1, 3, 4), 2)

    def test_share_prefix_zero_length_always_true(self):
        assert it.share_prefix((1,), (9,), 0)


class TestMiscHelpers:
    def test_max_length(self):
        assert it.max_length([(1,), (1, 2, 3), (4, 5)]) == 3

    def test_max_length_empty(self):
        assert it.max_length([]) == 0

    def test_sort_itemsets_by_length_then_lex(self):
        assert it.sort_itemsets([(2, 3), (1,), (1, 2)]) == [
            (1,), (1, 2), (2, 3),
        ]

    def test_format_itemset(self):
        assert it.format_itemset((1, 2, 5)) == "{1, 2, 5}"

    def test_format_empty_itemset(self):
        assert it.format_itemset(()) == "{}"
