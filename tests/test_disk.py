"""Tests for the file-backed streaming database (repro.db.disk)."""

import pytest

from repro.algorithms.apriori import Apriori
from repro.core.pincer import PincerSearch
from repro.db import io
from repro.db.counting import get_counter
from repro.db.disk import DiskTransactionDatabase
from repro.db.transaction_db import TransactionDatabase


@pytest.fixture()
def on_disk(tmp_path):
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2, 3], [1, 2], [3, 4], [1, 2, 3]]
    )
    path = tmp_path / "db.dat"
    io.save(db, path)
    return DiskTransactionDatabase(path), db


class TestMetadata:
    def test_len_and_universe_from_one_scan(self, on_disk):
        disk, memory = on_disk
        assert len(disk) == len(memory)
        assert disk.universe == memory.universe
        assert disk.file_reads == 1  # the metadata pass

    def test_malformed_file_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1 2\nnope\n")
        with pytest.raises(ValueError, match=":2:"):
            DiskTransactionDatabase(path)

    def test_repr_mentions_reads(self, on_disk):
        disk, _ = on_disk
        assert "reads=1" in repr(disk)


class TestStreaming:
    def test_each_iteration_is_a_file_read(self, on_disk):
        disk, memory = on_disk
        before = disk.file_reads
        assert sorted(map(sorted, disk)) == sorted(map(sorted, memory))
        assert sorted(map(sorted, disk.transactions)) == sorted(
            map(sorted, memory)
        )
        assert disk.file_reads == before + 2

    def test_records_streamed_accumulates(self, on_disk):
        disk, memory = on_disk
        list(disk)
        assert disk.records_streamed == 2 * len(memory)  # metadata + this

    def test_support_interface_matches_memory(self, on_disk):
        disk, memory = on_disk
        for probe in ([1], [1, 2], [3, 4], [9]):
            assert disk.support_count(probe) == memory.support_count(probe)
        assert disk.absolute_support(0.5) == memory.absolute_support(0.5)
        assert disk.item_support_counts() == memory.item_support_counts()
        assert disk.average_transaction_size() == pytest.approx(
            memory.average_transaction_size()
        )

    def test_bitmaps_match_memory_and_are_cached(self, on_disk):
        disk, memory = on_disk
        assert disk.item_bitmaps() == memory.item_bitmaps()
        reads = disk.file_reads
        disk.item_bitmaps()
        assert disk.file_reads == reads  # cached

    def test_load_into_memory_round_trip(self, on_disk):
        disk, memory = on_disk
        assert disk.load_into_memory() == memory


class TestMiningFromDisk:
    @pytest.mark.parametrize("engine", ["naive", "bitmap", "hashtree", "trie"])
    def test_all_engines_mine_from_disk(self, on_disk, engine):
        disk, memory = on_disk
        from_disk = PincerSearch(engine=engine).mine(disk, 0.5)
        from_memory = PincerSearch(engine=engine).mine(memory, 0.5)
        assert from_disk.mfs == from_memory.mfs

    def test_streaming_engine_reads_file_once_per_pass(self, on_disk):
        disk, _ = on_disk
        counter = get_counter("naive")
        reads_before = disk.file_reads
        result = Apriori().mine(disk, 0.5, counter=counter)
        physical_reads = disk.file_reads - reads_before
        assert physical_reads == result.stats.num_passes

    def test_io_model_matches_paper_accounting(self, on_disk):
        disk, _ = on_disk
        counter = get_counter("trie")
        result = PincerSearch(adaptive=False).mine(
            disk, 0.5, counter=counter
        )
        # records billed by the engine == passes * |D|
        assert counter.records_read == result.stats.num_passes * len(disk)
