"""Algorithm-level tests for Pincer-Search (repro.core.pincer)."""

import pytest

from repro.core.adaptive import AdaptivePolicy, AlwaysMaintain, NeverMaintain
from repro.core.pincer import PincerSearch, pincer_search, resolve_threshold
from repro.core.result import MiningResult
from repro.db.counting import get_counter
from repro.db.transaction_db import TransactionDatabase


def toy_db():
    # frequent at 50% (threshold 2 of 4): {1,2,3} and all its subsets
    return TransactionDatabase([[1, 2, 3], [1, 2, 3], [1, 2], [3, 4]])


class TestBasicMining:
    def test_finds_single_maximal_itemset(self):
        result = pincer_search(toy_db(), 0.5)
        assert set(result.mfs) == {(1, 2, 3)}

    def test_min_count_equivalent_to_fraction(self):
        by_fraction = pincer_search(toy_db(), 0.5)
        by_count = pincer_search(toy_db(), min_count=2)
        assert by_fraction.mfs == by_count.mfs

    def test_everything_infrequent_gives_empty_mfs(self):
        db = TransactionDatabase([[1], [2], [3], [4]])
        assert pincer_search(db, 0.9).mfs == frozenset()

    def test_whole_universe_frequent_in_one_pass(self):
        db = TransactionDatabase([[1, 2, 3]] * 4)
        result = pincer_search(db, 1.0, adaptive=False)
        assert set(result.mfs) == {(1, 2, 3)}
        # the initial MFCS element is counted frequent immediately
        assert result.stats.num_passes == 1
        assert result.stats.total_maximal_found_in_mfcs == 1

    def test_empty_database(self):
        result = pincer_search(TransactionDatabase([]), 0.5)
        assert result.mfs == frozenset()
        assert result.stats.num_passes == 0

    def test_database_with_empty_transactions_only(self):
        result = pincer_search(TransactionDatabase([[], []]), 0.5)
        assert result.mfs == frozenset()

    def test_zero_support_universe_items_are_ignored(self):
        db = TransactionDatabase([[1, 2], [1, 2]], universe=range(1, 30))
        result = pincer_search(db, 0.5)
        assert set(result.mfs) == {(1, 2)}

    def test_singleton_database(self):
        db = TransactionDatabase([[5]])
        assert set(pincer_search(db, 1.0).mfs) == {(5,)}


class TestResultContents:
    def test_supports_cover_mfs_members(self):
        result = pincer_search(toy_db(), 0.5)
        for member in result.mfs:
            assert result.supports[member] == toy_db().support_count(member)

    def test_result_metadata(self):
        result = pincer_search(toy_db(), 0.5)
        assert result.num_transactions == 4
        assert result.min_support_count == 2
        assert result.min_support == 0.5
        assert result.algorithm == "pincer-search"

    def test_pure_variant_is_named_distinctly(self):
        result = pincer_search(toy_db(), 0.5, adaptive=False)
        assert result.algorithm == "pincer-search-pure"

    def test_stats_passes_record_counting_work(self):
        result = pincer_search(toy_db(), 0.5, adaptive=False)
        assert result.stats.num_passes >= 1
        assert result.stats.total_candidates >= 4  # at least C_1


class TestParameterValidation:
    def test_requires_exactly_one_threshold(self):
        with pytest.raises(ValueError):
            pincer_search(toy_db())
        with pytest.raises(ValueError):
            pincer_search(toy_db(), 0.5, min_count=2)

    def test_rejects_nonpositive_min_count(self):
        with pytest.raises(ValueError):
            pincer_search(toy_db(), min_count=0)

    def test_resolve_threshold_on_empty_db(self):
        db = TransactionDatabase([])
        count, fraction = resolve_threshold(db, None, 3)
        assert count == 3
        assert fraction == 1.0

    def test_rejects_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            pincer_search(toy_db(), 1.5)


class TestEngineAndCounterInjection:
    @pytest.mark.parametrize("engine", ["naive", "bitmap", "hashtree", "trie"])
    def test_all_engines_same_answer(self, engine):
        result = pincer_search(toy_db(), 0.5, engine=engine)
        assert set(result.mfs) == {(1, 2, 3)}

    def test_explicit_counter_records_passes(self):
        counter = get_counter("bitmap")
        miner = PincerSearch(adaptive=False)
        result = miner.mine(toy_db(), 0.5, counter=counter)
        assert counter.passes == result.stats.num_passes
        assert counter.records_read == result.stats.records_read


class TestPolicies:
    def test_never_maintain_matches_pure(self):
        never = pincer_search(toy_db(), 0.5, policy=NeverMaintain())
        pure = pincer_search(toy_db(), 0.5, adaptive=False)
        assert never.mfs == pure.mfs

    def test_never_maintain_counts_no_mfcs_candidates(self):
        result = pincer_search(toy_db(), 0.5, policy=NeverMaintain())
        assert all(
            stats.mfcs_candidates == 0 for stats in result.stats.passes
        )
        assert result.stats.total_maximal_found_in_mfcs == 0

    def test_abandonment_midway_still_correct(self):
        db = TransactionDatabase(
            [[1, 2, 3, 4], [1, 2, 3, 4], [1, 2], [3, 4], [5, 6], [5, 6]]
        )
        policy = AdaptivePolicy(futile_passes=1, min_passes=1,
                                abandon_length_cap=50)
        result = pincer_search(db, 2 / 6, policy=policy)
        pure = pincer_search(db, 2 / 6, adaptive=False)
        assert result.mfs == pure.mfs

    def test_observation2_prunes_mfs_subsets(self):
        # with a concentrated database the pure pincer discovers the long
        # maximal itemset top-down and never counts its subsets bottom-up
        db = TransactionDatabase([[1, 2, 3, 4, 5]] * 9 + [[1, 6]])
        result = pincer_search(db, 0.5, adaptive=False)
        assert (1, 2, 3, 4, 5) in result.mfs
        pruned = sum(
            stats.pruned_as_mfs_subsets for stats in result.stats.passes
        )
        assert pruned > 0 or result.stats.num_passes <= 2


class TestPruneUncoveredExtension:
    def test_same_answer_with_extension(self):
        with_extension = pincer_search(
            toy_db(), 0.5, adaptive=False, prune_uncovered=True
        )
        without = pincer_search(toy_db(), 0.5, adaptive=False)
        assert with_extension.mfs == without.mfs

    def test_extension_never_counts_more(self):
        db = TransactionDatabase(
            [[1, 2, 3, 4], [1, 2, 3], [2, 3, 4], [1, 3, 4], [1, 2, 4]] * 2
            + [[5, 6]] * 3
        )
        plain = pincer_search(db, 0.3, adaptive=False)
        extended = pincer_search(
            db, 0.3, adaptive=False, prune_uncovered=True
        )
        assert extended.mfs == plain.mfs
        assert (
            extended.stats.total_candidates <= plain.stats.total_candidates
        )

    def test_flag_is_exposed(self):
        assert PincerSearch(prune_uncovered=True).prune_uncovered
        assert not PincerSearch().prune_uncovered


class TestPassAccounting:
    def test_passes_equal_database_reads(self):
        counter = get_counter("bitmap")
        result = PincerSearch(adaptive=False).mine(
            toy_db(), 0.5, counter=counter
        )
        assert result.stats.num_passes == counter.passes

    def test_candidates_after_pass2_excludes_early_passes(self):
        result = pincer_search(toy_db(), 0.5, adaptive=False)
        total = result.stats.total_candidates
        late = result.stats.candidates_after_pass2
        early = sum(
            stats.total_candidates
            for stats in result.stats.passes
            if stats.pass_number <= 2
        )
        assert total == late + early
