"""Tests for the Apriori hash tree and the candidate trie."""

import random

import pytest

from repro.db.hash_tree import HashTree
from repro.db.trie import CandidateTrie


def brute_counts(candidates, transactions):
    return {
        candidate: sum(
            1 for t in transactions if set(candidate) <= t
        )
        for candidate in candidates
    }


class TestHashTree:
    def test_counts_simple(self):
        candidates = [(1, 2), (1, 3), (2, 3)]
        transactions = [frozenset({1, 2, 3}), frozenset({1, 2}), frozenset({3})]
        tree = HashTree(candidates)
        assert tree.counts_by_itemset(transactions) == {
            (1, 2): 2, (1, 3): 1, (2, 3): 1,
        }

    def test_rejects_mixed_lengths(self):
        with pytest.raises(ValueError):
            HashTree([(1,), (1, 2)])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashTree([], branch=1)
        with pytest.raises(ValueError):
            HashTree([], leaf_capacity=0)

    def test_empty_tree(self):
        tree = HashTree([])
        assert len(tree) == 0
        assert tree.count_database([frozenset({1})]) == []

    def test_short_transactions_skipped(self):
        tree = HashTree([(1, 2, 3)])
        assert tree.counts_by_itemset([frozenset({1, 2})]) == {(1, 2, 3): 0}

    def test_splitting_under_small_leaf_capacity(self):
        candidates = [(i, i + 1, i + 2) for i in range(1, 40)]
        tree = HashTree(candidates, branch=4, leaf_capacity=2)
        depth, leaves = tree.depth_profile()
        assert depth >= 1
        assert leaves > 1
        transactions = [frozenset(range(1, 15))]
        counts = tree.counts_by_itemset(transactions)
        assert counts == brute_counts(candidates, transactions)

    def test_no_double_counting_through_hash_collisions(self):
        # items 1 and 9 collide modulo 8: a transaction containing both
        # reaches the same subtree twice but must count each candidate once
        candidates = [(1, 9)]
        tree = HashTree(candidates, branch=8, leaf_capacity=1)
        assert tree.counts_by_itemset([frozenset({1, 9})]) == {(1, 9): 1}

    def test_randomised_against_brute_force(self):
        rng = random.Random(17)
        for k in (1, 2, 3, 4):
            population = list(range(1, 25))
            candidates = list(
                {
                    tuple(sorted(rng.sample(population, k)))
                    for _ in range(50)
                }
            )
            transactions = [
                frozenset(rng.sample(population, rng.randint(0, 12)))
                for _ in range(80)
            ]
            tree = HashTree(candidates, branch=5, leaf_capacity=3)
            assert tree.counts_by_itemset(transactions) == brute_counts(
                candidates, transactions
            )


class TestCandidateTrie:
    def test_counts_simple(self):
        trie = CandidateTrie([(1, 2), (2,), (1, 2, 3)])
        transactions = [frozenset({1, 2, 3}), frozenset({2, 3})]
        assert trie.counts_by_itemset(transactions) == {
            (1, 2): 1, (2,): 2, (1, 2, 3): 1,
        }

    def test_mixed_lengths_supported(self):
        trie = CandidateTrie([(1,), (1, 2, 3, 4)])
        assert len(trie) == 2

    def test_insert_idempotent(self):
        trie = CandidateTrie()
        trie.insert((1, 2))
        trie.insert((1, 2))
        assert len(trie) == 1

    def test_contains(self):
        trie = CandidateTrie([(1, 2)])
        assert (1, 2) in trie
        assert (1,) not in trie  # prefix of a candidate is not a candidate

    def test_itemsets_in_insertion_order(self):
        trie = CandidateTrie([(2, 3), (1,)])
        assert trie.itemsets() == [(2, 3), (1,)]

    def test_empty_itemset_counts_every_transaction(self):
        trie = CandidateTrie([()])
        assert trie.counts_by_itemset([frozenset(), frozenset({1})]) == {
            (): 2
        }

    def test_randomised_against_brute_force(self):
        rng = random.Random(19)
        population = list(range(1, 20))
        candidates = list(
            {
                tuple(sorted(rng.sample(population, rng.randint(1, 5))))
                for _ in range(70)
            }
        )
        transactions = [
            frozenset(rng.sample(population, rng.randint(0, 10)))
            for _ in range(60)
        ]
        trie = CandidateTrie(candidates)
        assert trie.counts_by_itemset(transactions) == brute_counts(
            candidates, transactions
        )
