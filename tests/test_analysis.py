"""Tests for benchmark analysis/export (repro.bench.analysis)."""

import csv
import io

import pytest

from repro.bench.analysis import (
    CSV_COLUMNS,
    ascii_chart,
    figure_report,
    to_csv,
    write_csv,
)
from repro.bench.harness import CellResult


def make_rows():
    shared = dict(database="T", total_candidates=50, mfs_size=3,
                  longest_maximal=4, maximal_found_in_mfcs=2)
    return [
        CellResult(min_support_percent=2.0, algorithm="pincer-search",
                   seconds=0.5, passes=4, candidates=10, **shared),
        CellResult(min_support_percent=2.0, algorithm="apriori",
                   seconds=5.0, passes=9, candidates=90, **shared),
        CellResult(min_support_percent=1.0, algorithm="pincer-search",
                   seconds=1.0, passes=5, candidates=20, **shared),
        CellResult(min_support_percent=1.0, algorithm="apriori",
                   seconds=30.0, passes=12, candidates=300, dnf=True,
                   **shared),
    ]


class TestCsv:
    def test_round_trip_via_csv_reader(self):
        text = to_csv(make_rows())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4
        assert parsed[0]["algorithm"] == "pincer-search"
        assert parsed[3]["dnf"] == "True"
        assert set(parsed[0]) == set(CSV_COLUMNS)

    def test_write_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        write_csv(make_rows(), path)
        assert path.read_text().startswith("database,")


class TestAsciiChart:
    def test_bar_lengths_proportional(self):
        chart = ascii_chart(["a", "b"], [1.0, 2.0], width=4)
        lines = chart.splitlines()
        assert lines[0].count("█") == 2
        assert lines[1].count("█") == 4

    def test_zero_value_has_no_bar(self):
        chart = ascii_chart(["zero", "one"], [0.0, 1.0], width=4)
        assert chart.splitlines()[0].count("█") == 0

    def test_small_positive_gets_minimum_bar(self):
        chart = ascii_chart(["tiny", "big"], [0.001, 100.0], width=10)
        assert chart.splitlines()[0].count("█") == 1

    def test_empty_input(self):
        assert ascii_chart([], []) == ""

    def test_misaligned_input_raises(self):
        with pytest.raises(ValueError):
            ascii_chart(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        chart = ascii_chart(["x"], [3.0], unit="x")
        assert chart.endswith("3x")


class TestFigureReport:
    def test_contains_all_three_panels(self):
        report = figure_report(make_rows(), title="demo")
        assert "demo" in report
        assert "relative time" in report
        assert "candidates per cell" in report
        assert "passes per cell" in report

    def test_ratios_rendered_per_support(self):
        report = figure_report(make_rows())
        assert "2%" in report
        assert "1%" in report
        assert "10x" in report  # 5.0 / 0.5 at 2%

    def test_dnf_lower_bound_note(self):
        report = figure_report(make_rows())
        assert "lower bounds" in report
        assert "1%" in report
