"""Tests for the IBM Quest generator reimplementation (repro.datagen)."""

import pytest

from repro.datagen.configs import (
    CONCENTRATED,
    CONCENTRATED_SUPPORTS,
    SCATTERED,
    SCATTERED_SUPPORTS,
    parse_name,
    scaled,
)
from repro.datagen.quest import QuestConfig, QuestGenerator, generate


class TestConfig:
    def test_name_round_trip(self):
        config = parse_name("T10.I4.D100K")
        assert config.name == "T10.I4.D100K"
        assert config.num_transactions == 100_000
        assert config.avg_transaction_size == 10.0
        assert config.avg_pattern_size == 4.0

    def test_name_without_k_suffix(self):
        config = parse_name("T5.I2.D500")
        assert config.num_transactions == 500

    def test_fractional_sizes(self):
        config = parse_name("T7.5.I2.5.D1K")
        assert config.avg_transaction_size == 7.5
        assert config.name == "T7.5.I2.5.D1K"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_name("X10.I4.D100K")

    def test_scaled_changes_only_transactions(self):
        base = parse_name("T10.I4.D100K", num_patterns=50, seed=3)
        small = scaled(base, 2000)
        assert small.num_transactions == 2000
        assert small.num_patterns == 50
        assert small.seed == 3
        assert small.name == "T10.I4.D2K"

    def test_validation(self):
        with pytest.raises(ValueError):
            QuestConfig(-1, 10, 4)
        with pytest.raises(ValueError):
            QuestConfig(10, 0, 4)
        with pytest.raises(ValueError):
            QuestConfig(10, 10, 4, num_patterns=0)
        with pytest.raises(ValueError):
            QuestConfig(10, 10, 4, correlation=2.0)

    def test_paper_experiment_catalogues(self):
        assert set(SCATTERED) == set(SCATTERED_SUPPORTS)
        assert set(CONCENTRATED) == set(CONCENTRATED_SUPPORTS)
        assert all(c.num_patterns == 2000 for c in SCATTERED.values())
        assert all(c.num_patterns == 50 for c in CONCENTRATED.values())


def small_config(**overrides):
    defaults = dict(
        num_transactions=500,
        avg_transaction_size=8,
        avg_pattern_size=3,
        num_patterns=20,
        num_items=60,
        seed=7,
    )
    defaults.update(overrides)
    return QuestConfig(**defaults)


class TestPatternPool:
    def test_pool_size_is_num_patterns(self):
        generator = QuestGenerator(small_config())
        assert len(generator.patterns) == 20

    def test_pattern_items_within_universe(self):
        generator = QuestGenerator(small_config())
        for pattern in generator.patterns:
            assert all(1 <= item <= 60 for item in pattern.items)
            assert pattern.items == tuple(sorted(set(pattern.items)))

    def test_weights_normalised(self):
        generator = QuestGenerator(small_config())
        total = sum(pattern.weight for pattern in generator.patterns)
        assert total == pytest.approx(1.0)

    def test_corruption_levels_clamped(self):
        generator = QuestGenerator(small_config())
        assert all(0.0 <= p.corruption <= 1.0 for p in generator.patterns)

    def test_mean_pattern_size_tracks_parameter(self):
        generator = QuestGenerator(small_config(num_patterns=400))
        mean = sum(len(p.items) for p in generator.patterns) / 400
        assert mean == pytest.approx(3.0, abs=0.6)

    def test_correlation_produces_overlap(self):
        correlated = QuestGenerator(small_config(correlation=0.9,
                                                 num_patterns=200))
        independent = QuestGenerator(small_config(correlation=0.0,
                                                  num_patterns=200, seed=8))

        def mean_consecutive_overlap(patterns):
            overlaps = []
            for first, second in zip(patterns, patterns[1:]):
                union = len(set(first.items) | set(second.items))
                if union:
                    overlaps.append(
                        len(set(first.items) & set(second.items)) / union
                    )
            return sum(overlaps) / len(overlaps)

        assert mean_consecutive_overlap(correlated.patterns) > (
            mean_consecutive_overlap(independent.patterns)
        )


class TestTransactions:
    def test_database_shape(self):
        db = generate(small_config())
        assert len(db) == 500
        assert db.universe == tuple(range(1, 61))

    def test_determinism_per_seed(self):
        first = generate(small_config())
        second = generate(small_config())
        assert first == second

    def test_different_seeds_differ(self):
        assert generate(small_config()) != generate(small_config(), seed=99)

    def test_seed_override_via_generate(self):
        config = small_config()
        assert generate(config, seed=5) == generate(small_config(seed=5))

    def test_no_empty_transactions(self):
        db = generate(small_config())
        assert all(len(transaction) >= 1 for transaction in db)

    def test_average_size_tracks_parameter(self):
        db = generate(small_config(num_transactions=2000))
        assert db.average_transaction_size() == pytest.approx(8.0, rel=0.35)

    def test_explicit_count_overrides_config(self):
        generator = QuestGenerator(small_config())
        assert len(generator.generate(37)) == 37

    def test_planted_patterns_have_elevated_support(self):
        # the heaviest pattern should occur (possibly corrupted) clearly
        # more often than a random same-size itemset
        config = small_config(num_transactions=3000)
        generator = QuestGenerator(config)
        db = generator.generate()
        heaviest = max(generator.patterns, key=lambda p: p.weight)
        random_itemset = tuple(range(1, len(heaviest.items) + 1))
        planted_support = db.support_count(heaviest.items)
        baseline = db.support_count(random_itemset)
        assert planted_support >= baseline

    def test_concentrated_config_yields_longer_maximal_itemsets(self):
        from repro.algorithms.brute_force import brute_force_mfs  # noqa: F401
        from repro.core.pincer import pincer_search

        concentrated = generate(small_config(num_patterns=5, seed=2,
                                             num_transactions=1500))
        scattered = generate(small_config(num_patterns=500, seed=2,
                                          num_transactions=1500))
        minsup = 0.03
        long_c = pincer_search(concentrated, minsup).longest_maximal() or ()
        long_s = pincer_search(scattered, minsup).longest_maximal() or ()
        assert len(long_c) >= len(long_s)
