"""Unit tests for the guard-masked set-trie (repro.core.settrie)."""

import random

from repro.core.bitset import ItemUniverse
from repro.core.cover import CoverIndex
from repro.core.settrie import SetTrie


class TestBasics:
    def test_empty(self):
        trie = SetTrie()
        assert len(trie) == 0
        assert not trie
        assert not trie.covers((1,))

    def test_add_discard_roundtrip(self):
        trie = SetTrie()
        assert trie.add((1, 2))
        assert not trie.add((1, 2))
        assert (1, 2) in trie
        assert trie.covers((1,))
        assert trie.discard((1, 2))
        assert not trie.discard((1, 2))
        assert not trie.covers((1,))

    def test_prefix_members_survive_discard(self):
        trie = SetTrie([(1, 2), (1, 2, 3)])
        trie.discard((1, 2, 3))
        assert sorted(trie.members) == [(1, 2)]
        assert trie.covers((1, 2))
        assert not trie.covers((3,))

    def test_covers_strictly(self):
        trie = SetTrie([(1, 2)])
        assert trie.covers_strictly((1,))
        assert not trie.covers_strictly((1, 2))
        trie.add((1, 2, 3))
        assert trie.covers_strictly((1, 2))

    def test_empty_probe(self):
        assert SetTrie([(5,)]).covers(())
        assert not SetTrie().covers(())


class TestGuardMasks:
    def test_universe_guard_prunes_but_stays_exact(self):
        universe = ItemUniverse(range(1, 10))
        trie = SetTrie([(1, 2, 3), (4, 5)], universe=universe)
        assert trie.covers((2, 3))
        assert not trie.covers((2, 5))
        assert sorted(trie.supersets_of((4,))) == [(4, 5)]

    def test_query_counters_move(self):
        trie = SetTrie([(1, 2, 3)])
        before = (trie.queries, trie.node_visits)
        trie.covers((2,))
        assert trie.queries == before[0] + 1
        assert trie.node_visits > before[1]


class TestDifferentialAgainstCoverIndex:
    def test_randomized_parity(self):
        rng = random.Random(5)
        universe = ItemUniverse(range(1, 20))
        trie = SetTrie(universe=universe)
        reference = CoverIndex()
        pool = [
            tuple(sorted(rng.sample(range(1, 20), rng.randint(1, 5))))
            for _ in range(40)
        ]
        for _ in range(300):
            member = rng.choice(pool)
            if rng.random() < 0.35:
                assert trie.discard(member) == reference.discard(member)
            else:
                assert trie.add(member) == reference.add(member)
            probe = rng.choice(pool)
            assert trie.covers(probe) == reference.covers(probe)
            assert trie.covers_strictly(probe) == (
                reference.covers_strictly(probe)
            )
            assert sorted(trie.supersets_of(probe)) == sorted(
                reference.supersets_of(probe)
            )
        assert sorted(trie.members) == sorted(reference.members)
