"""CompressedMaskStore: mapping contract, fuzz vs a dict mirror, compression.

The store is a drop-in for the ``mask -> slot`` dict inside
:class:`~repro.core.cover.MaskCover`, so the contract under test is the
mapping subset MaskCover uses — ``in`` / ``[]`` / ``get`` / ``pop`` /
``len`` / iteration — plus the compression evidence (``encoded_bytes`` /
``stats``) and the block split/merge mechanics around :data:`BLOCK`.
"""

import random

import pytest

from repro.core.bitset import ItemUniverse
from repro.core.cover import MaskCover
from repro.core.maskstore import BLOCK, CompressedMaskStore

NUM_TRIALS = 6


def test_empty_store():
    store = CompressedMaskStore()
    assert len(store) == 0
    assert not store
    assert list(store) == []
    assert 7 not in store
    assert store.get(7) is None
    assert store.get(7, "fallback") == "fallback"
    with pytest.raises(KeyError):
        store[7]
    with pytest.raises(KeyError):
        store.pop(7)
    assert store.pop(7, None) is None
    assert store.stats() == {"members": 0, "blocks": 0, "encoded_bytes": 0}


def test_single_entry_roundtrip():
    store = CompressedMaskStore()
    store[42] = 3
    assert len(store) == 1
    assert store
    assert 42 in store
    assert store[42] == 3
    store[42] = 9  # overwrite keeps one entry
    assert len(store) == 1
    assert store[42] == 9
    assert store.pop(42) == 9
    assert len(store) == 0
    assert 42 not in store


def test_iteration_is_ascending_mask_order():
    store = CompressedMaskStore()
    masks = [1 << 40, 3, 1 << 200, 17, 5, (1 << 40) | 1]
    for slot, mask in enumerate(masks):
        store[mask] = slot
    assert list(store) == sorted(masks)


def test_block_split_keeps_contract():
    store = CompressedMaskStore()
    mirror = {}
    # enough sequential inserts to force several block splits
    for mask in range(5 * BLOCK):
        store[mask * 3] = mask
        mirror[mask * 3] = mask
    stats = store.stats()
    assert stats["blocks"] >= 2
    assert stats["members"] == len(mirror)
    assert list(store) == sorted(mirror)
    for mask, slot in mirror.items():
        assert store[mask] == slot
    # drain from both ends, alternating, across block boundaries
    ordered = sorted(mirror)
    while ordered:
        mask = ordered.pop(0 if len(ordered) % 2 else -1)
        assert store.pop(mask) == mirror.pop(mask)
        assert len(store) == len(mirror)
    assert store.stats() == {"members": 0, "blocks": 0, "encoded_bytes": 0}


def _random_mask(rng):
    """Masks shaped like interned itemsets: few set bits, wide universe."""
    width = rng.choice([16, 64, 300])
    bits = rng.randint(0, 6)
    mask = 0
    for _ in range(bits):
        mask |= 1 << rng.randrange(width)
    return mask


def test_fuzz_against_dict_mirror():
    rng = random.Random(4099)
    for _ in range(NUM_TRIALS):
        store = CompressedMaskStore()
        mirror = {}
        for _ in range(1200):
            op = rng.random()
            mask = _random_mask(rng)
            if op < 0.55:
                slot = rng.randrange(1 << 20)
                store[mask] = slot
                mirror[mask] = slot
            elif op < 0.75 and mirror:
                victim = rng.choice(list(mirror))
                assert store.pop(victim) == mirror.pop(victim)
            elif op < 0.85:
                assert store.pop(mask, "absent") == mirror.pop(mask, "absent")
            else:
                assert (mask in store) == (mask in mirror)
                assert store.get(mask, -1) == mirror.get(mask, -1)
            assert len(store) == len(mirror)
        assert list(store) == sorted(mirror)
        assert {mask: store[mask] for mask in store} == mirror


def test_clustered_families_compress():
    """Wildcard-clustered masks (the MFCS shape) cost a few bytes each."""
    store = CompressedMaskStore()
    prefix = ((1 << 40) - 1) << 160  # 40 shared high bits
    for variation in range(4 * BLOCK):
        store[prefix | variation] = variation
    members = len(store)
    # a dict entry is ~100 bytes; the delta store should be way under
    # 8 bytes/member on this shape (low-bit variations cancel the prefix)
    assert store.encoded_bytes() < 8 * members
    stats = store.stats()
    assert stats["members"] == members
    assert stats["encoded_bytes"] == store.encoded_bytes()


def test_multibyte_varint_deltas_roundtrip():
    """Deltas spanning many varint bytes (sparse giant masks) decode back."""
    store = CompressedMaskStore()
    masks = [1 << (13 * gap) for gap in range(20)]
    for slot, mask in enumerate(masks):
        store[mask] = slot
    assert list(store) == sorted(masks)
    for slot, mask in enumerate(masks):
        assert store[mask] == slot


def test_maskcover_compressed_matches_dict_backed():
    """End-to-end: compressed MaskCover answers exactly like the dict one."""
    rng = random.Random(271)
    universe = ItemUniverse(range(30))
    plain = MaskCover(universe)
    compressed = MaskCover(universe, compressed=True)
    members = []
    for _ in range(400):
        if members and rng.random() < 0.3:
            victim = members.pop(rng.randrange(len(members)))
            plain.discard(victim)
            compressed.discard(victim)
        else:
            member = tuple(sorted(rng.sample(range(30), rng.randint(1, 8))))
            if member not in members:
                members.append(member)
            plain.add(member)
            compressed.add(member)
        probe = tuple(sorted(rng.sample(range(30), rng.randint(0, 9))))
        assert compressed.covers(probe) == plain.covers(probe)
        assert sorted(compressed.supersets_of(probe)) == sorted(
            plain.supersets_of(probe)
        )
        assert len(compressed) == len(plain)
    assert sorted(compressed.members) == sorted(plain.members)
