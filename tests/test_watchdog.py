"""Stall watchdog tests: unit thresholds + wedged/killed worker recovery.

The integration classes wedge (SIGSTOP) or kill (SIGKILL) one shard
worker and assert the pass still completes with counts byte-identical to
an undisturbed serial run, that a schema-v3 ``shard_stalled`` event is
emitted, and that the engine steps its fallback ladder down afterwards.
"""

import json
import os
import signal
import time

import pytest

from repro.db.counting import get_counter
from repro.db.parallel import ShardedCounter
from repro.db.transaction_db import TransactionDatabase
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_trace_event
from repro.obs.telemetry import (
    STATE_COUNTING,
    TelemetryConfig,
    TelemetrySegment,
)
from repro.obs.tracing import Tracer
from repro.obs.watchdog import StallEvent, StallWatchdog

TRANSACTIONS = [[1, 2, 3], [1, 2], [2, 3], [3], [1], [2], [4, 5]] * 60
DB = TransactionDatabase(TRANSACTIONS)
CANDIDATES = [(), (1,), (2,), (3,), (1, 2), (2, 3), (1, 2, 3), (4, 5), (9,)]
EXPECTED = get_counter("naive").count(DB, CANDIDATES)

# wide enough to let the shm scheduler pick candidate (stealing) mode
WIDE = [(i % 6 + 1,) for i in range(600)]
WIDE_EXPECTED = get_counter("naive").count(DB, WIDE)

#: aggressive thresholds so tests finish quickly; the hard override
#: sidesteps the EWMA warm-up entirely
FAST_STALL = dict(stall_after=0.6, poll_interval=0.02)


def _capture(tmp_path, name):
    trace_path = str(tmp_path / ("%s.jsonl" % name))
    tracer = Tracer.to_path(trace_path)
    obs = Instrumentation(tracer=tracer, metrics=MetricsRegistry())
    obs.telemetry = TelemetryConfig(**FAST_STALL)
    return obs, trace_path


def _stall_events(trace_path):
    events = []
    with open(trace_path, encoding="utf-8") as handle:
        for line in handle:
            event = json.loads(line)
            if event.get("type") == "shard_stalled":
                validate_trace_event(event)
                events.append(event)
    return events


# ----------------------------------------------------------------------
# unit: thresholding and detection logic
# ----------------------------------------------------------------------


class TestWatchdogUnit:
    def _segment(self):
        return TelemetrySegment(2, plane="file")

    def test_wedged_detection_uses_hard_threshold(self):
        with self._segment() as segment:
            writer = segment.writer(1)
            writer.beat(state=STATE_COUNTING)
            watchdog = StallWatchdog(
                segment.reader(), config=TelemetryConfig(stall_after=1.0)
            )
            now = time.monotonic()
            assert watchdog.check({0}, now=now + 0.5) == []
            events = watchdog.check({0}, now=now + 1.5)
            assert len(events) == 1
            assert events[0].kind == "wedged"
            assert events[0].shard == 0
            assert events[0].age_s >= 1.0

    def test_stall_flagged_once(self):
        with self._segment() as segment:
            segment.writer(1).beat(state=STATE_COUNTING)
            watchdog = StallWatchdog(
                segment.reader(), config=TelemetryConfig(stall_after=0.1)
            )
            now = time.monotonic()
            assert len(watchdog.check({0}, now=now + 1.0)) == 1
            assert watchdog.check({0}, now=now + 2.0) == []
            assert len(watchdog.stalled) == 1

    def test_reset_rearms_a_slot(self):
        with self._segment() as segment:
            writer = segment.writer(1)
            writer.beat(state=STATE_COUNTING)
            watchdog = StallWatchdog(
                segment.reader(), config=TelemetryConfig(stall_after=0.1)
            )
            now = time.monotonic()
            assert len(watchdog.check({0}, now=now + 1.0)) == 1
            watchdog.reset(0)
            writer.beat()  # fresh heartbeat after the worker was replaced
            assert watchdog.check({0}, now=time.monotonic()) == []

    def test_dead_worker_flagged_immediately(self):
        with self._segment() as segment:
            segment.writer(1).beat(state=STATE_COUNTING)
            watchdog = StallWatchdog(
                segment.reader(), config=TelemetryConfig(stall_after=60.0)
            )
            events = watchdog.check(
                {0}, alive=lambda shard: False, now=time.monotonic()
            )
            assert len(events) == 1
            assert events[0].kind == "dead"

    def test_non_pending_workers_never_judged(self):
        with self._segment() as segment:
            segment.writer(1).beat(state=STATE_COUNTING)
            watchdog = StallWatchdog(
                segment.reader(), config=TelemetryConfig(stall_after=0.1)
            )
            assert watchdog.check(set(), now=time.monotonic() + 99.0) == []

    def test_never_beaten_slot_ages_from_first_sight(self):
        with self._segment() as segment:
            watchdog = StallWatchdog(
                segment.reader(), config=TelemetryConfig(stall_after=0.5)
            )
            now = time.monotonic()
            assert watchdog.check({0}, now=now) == []  # first sighting
            events = watchdog.check({0}, now=now + 1.0)
            assert len(events) == 1 and events[0].kind == "wedged"

    def test_adaptive_threshold_scales_with_beat_interval(self):
        with self._segment() as segment:
            writer = segment.writer(1)
            config = TelemetryConfig(
                stall_factor=4.0, min_stall_seconds=0.001
            )
            watchdog = StallWatchdog(segment.reader(), config=config)
            for _ in range(6):
                writer.beat(state=STATE_COUNTING)
                watchdog.check({0}, now=time.monotonic())
                time.sleep(0.02)
            threshold = watchdog.threshold_for(1)
            # EWMA of ~20ms beats, factored up; must sit well under the
            # 2s default yet above a single observed interval
            assert 0.01 < threshold < 1.0

    def test_stall_event_metrics_and_trace(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "unit")
        with self._segment() as segment:
            segment.writer(1).beat(state=STATE_COUNTING)
            watchdog = StallWatchdog(
                segment.reader(),
                config=TelemetryConfig(stall_after=0.05),
                obs=obs,
            )
            time.sleep(0.1)
            assert len(watchdog.check({0})) == 1
        obs.finish()
        counters = obs.metrics.to_dict()["counters"]
        assert counters["telemetry.shard_stalled"] == 1
        assert counters["telemetry.shard_stalled.wedged"] == 1
        events = _stall_events(trace_path)
        assert len(events) == 1
        assert events[0]["kind"] == "wedged"

    def test_stall_event_value_object(self):
        event = StallEvent(
            shard=2, slot=3, pid=41, kind="dead", age_s=1.0, threshold_s=0.5
        )
        assert event.shard == 2 and event.kind == "dead"


# ----------------------------------------------------------------------
# integration: the pipe (pickled-batch) plane
# ----------------------------------------------------------------------


class TestPipePlaneRecovery:
    def _counter(self, obs):
        counter = ShardedCounter(num_shards=3, use_processes=True)
        counter.obs = obs
        return counter

    def _resume(self, pid):
        try:
            os.kill(pid, signal.SIGCONT)
        except (OSError, ProcessLookupError):
            pass

    def test_wedged_worker_recovers_byte_identical(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "pipe-wedged")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED  # spawns workers
            assert counter._telemetry is not None
            victim = counter.worker_pids[1]
            os.kill(victim, signal.SIGSTOP)
            try:
                assert counter.count(DB, CANDIDATES) == EXPECTED
            finally:
                self._resume(victim)
            assert counter.shards_reassigned == 1
            assert counter._stall_strikes == 1
        obs.finish()
        events = _stall_events(trace_path)
        assert len(events) == 1
        assert events[0]["kind"] == "wedged"
        assert events[0]["shard"] == 1

    def test_killed_worker_recovers_byte_identical(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "pipe-killed")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            os.kill(counter.worker_pids[0], signal.SIGKILL)
            time.sleep(0.1)  # let the process actually die
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.shards_reassigned == 1
        obs.finish()
        assert len(_stall_events(trace_path)) == 1

    def test_ladder_steps_down_after_strikes(self, tmp_path):
        obs, _ = _capture(tmp_path, "pipe-ladder")
        with self._counter(obs) as counter:
            counter.count(DB, CANDIDATES)
            victim = counter.worker_pids[2]
            os.kill(victim, signal.SIGSTOP)
            try:
                counter.count(DB, CANDIDATES)
            finally:
                self._resume(victim)
            # the wounded pool was dropped at the end of the pass; one
            # strike keeps the process plane on the next attach
            assert counter._workers == []
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert len(counter._workers) > 0
            counter._stall_strikes = 2
            counter._detach()
            # two strikes force in-process serial shards
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter._workers == []
        obs.finish()

    def test_unwedged_run_emits_no_stalls(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "pipe-clean")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.shards_reassigned == 0
        obs.finish()
        assert _stall_events(trace_path) == []


# ----------------------------------------------------------------------
# integration: the shared-memory plane (rows + candidates modes)
# ----------------------------------------------------------------------


try:
    from repro.db.vertical import HAVE_NUMPY
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False


@pytest.mark.skipif(not HAVE_NUMPY, reason="shm plane needs NumPy")
class TestShmPlaneRecovery:
    def _counter(self, obs):
        from repro.db.shm import ShmShardedCounter

        counter = ShmShardedCounter(num_shards=3, use_processes=True)
        counter.obs = obs
        return counter

    def _force_mode(self, counter, mode):
        scheduler = counter._scheduler
        counter._scheduler.choose = lambda n, rows: (
            mode, scheduler.chunk_for(n)
        )

    def _resume(self, pid):
        try:
            os.kill(pid, signal.SIGCONT)
        except (OSError, ProcessLookupError):
            pass

    def test_rows_mode_wedged_worker(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "shm-rows-wedged")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            if counter.plane not in ("shm", "mmap"):
                pytest.skip("shared plane unavailable: %s" % counter.plane)
            self._force_mode(counter, "rows")
            victim = counter.worker_pids[1]
            os.kill(victim, signal.SIGSTOP)
            try:
                assert counter.count(DB, CANDIDATES) == EXPECTED
            finally:
                self._resume(victim)
            assert counter.shards_reassigned == 1
        obs.finish()
        events = _stall_events(trace_path)
        assert len(events) == 1 and events[0]["kind"] == "wedged"

    def test_candidates_mode_wedged_worker(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "shm-cand-wedged")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            if counter.plane not in ("shm", "mmap"):
                pytest.skip("shared plane unavailable: %s" % counter.plane)
            self._force_mode(counter, "candidates")
            victim = counter.worker_pids[0]
            os.kill(victim, signal.SIGSTOP)
            try:
                assert counter.count(DB, WIDE) == WIDE_EXPECTED
            finally:
                self._resume(victim)
            # last_mode is None here: the stall forces a post-pass
            # close() so the next attach can step down the ladder
            assert counter.shards_reassigned == 1
        obs.finish()
        assert len(_stall_events(trace_path)) == 1

    def test_rows_mode_killed_worker(self, tmp_path):
        obs, trace_path = _capture(tmp_path, "shm-rows-killed")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            if counter.plane not in ("shm", "mmap"):
                pytest.skip("shared plane unavailable: %s" % counter.plane)
            self._force_mode(counter, "rows")
            os.kill(counter.worker_pids[2], signal.SIGKILL)
            time.sleep(0.1)
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.shards_reassigned == 1
        obs.finish()
        assert len(_stall_events(trace_path)) == 1

    def test_all_workers_dead_parent_counts(self, tmp_path):
        obs, _ = _capture(tmp_path, "shm-all-dead")
        with self._counter(obs) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            if counter.plane not in ("shm", "mmap"):
                pytest.skip("shared plane unavailable: %s" % counter.plane)
            self._force_mode(counter, "candidates")
            for pid in counter.worker_pids:
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.1)
            assert counter.count(DB, WIDE) == WIDE_EXPECTED
            # worker_pids is [] after the post-stall close; all three
            # original workers were retired
            assert counter.shards_reassigned == 3
        obs.finish()

    def test_ladder_steps_below_shared_plane(self, tmp_path):
        obs, _ = _capture(tmp_path, "shm-ladder")
        with self._counter(obs) as counter:
            counter.count(DB, CANDIDATES)
            if counter.plane not in ("shm", "mmap"):
                pytest.skip("shared plane unavailable: %s" % counter.plane)
            self._force_mode(counter, "rows")
            victim = counter.worker_pids[0]
            os.kill(victim, signal.SIGSTOP)
            try:
                counter.count(DB, CANDIDATES)
            finally:
                self._resume(victim)
            # one strike: the next attach must land below the shared
            # planes (pipe workers or serial shards)
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.plane in ("pipe", "serial")
        obs.finish()
