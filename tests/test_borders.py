"""Tests for border theory utilities (repro.borders)."""

import random

from repro.algorithms.brute_force import brute_force_frequents, brute_force_mfs
from repro.borders.borders import (
    border_certificate,
    is_downward_closed,
    negative_border,
    positive_border,
)
from repro.core.itemset import is_subset
from repro.core.lattice import downward_closure
from repro.db.transaction_db import TransactionDatabase


class TestPositiveBorder:
    def test_positive_border_is_maximal_elements(self):
        family = [(1,), (2,), (1, 2), (3,)]
        assert positive_border(family) == {(1, 2), (3,)}

    def test_positive_border_of_mining_result_is_mfs(self):
        db = TransactionDatabase([[1, 2, 3], [1, 2], [3]])
        frequents = brute_force_frequents(db, min_count=2)
        assert positive_border(frequents) == brute_force_mfs(db, min_count=2)


class TestNegativeBorder:
    def test_single_infrequent_item(self):
        assert negative_border([(1, 2)], [1, 2, 3]) == {(3,)}

    def test_triangle_example(self):
        # all pairs frequent but the triple is not
        assert negative_border([(1, 2), (1, 3), (2, 3)], [1, 2, 3]) == {
            (1, 2, 3)
        }

    def test_empty_mfs_border_is_all_items(self):
        assert negative_border([], [1, 2]) == {(1,), (2,)}

    def test_universe_frequent_has_empty_border(self):
        assert negative_border([(1, 2, 3)], [1, 2, 3]) == set()

    def test_border_members_are_minimal_infrequent(self):
        rng = random.Random(4)
        for trial in range(25):
            universe = list(range(1, rng.randint(3, 8)))
            transactions = [
                [i for i in universe if rng.random() < 0.6]
                for _ in range(rng.randint(2, 12))
            ]
            db = TransactionDatabase(transactions, universe=universe)
            mfs = brute_force_mfs(db, min_count=2)
            frequents = set(brute_force_frequents(db, min_count=2))
            border = negative_border(mfs, universe)
            for candidate in border:
                assert candidate not in frequents
                for dropped_index in range(len(candidate)):
                    subset = (
                        candidate[:dropped_index]
                        + candidate[dropped_index + 1:]
                    )
                    if subset:
                        assert subset in frequents
            # completeness: every minimal infrequent itemset is found
            from itertools import combinations

            for size in range(1, len(universe) + 1):
                for candidate in combinations(universe, size):
                    if candidate in frequents:
                        continue
                    immediate = [
                        candidate[:i] + candidate[i + 1:]
                        for i in range(len(candidate))
                    ]
                    if all(s in frequents for s in immediate if s):
                        assert candidate in border


class TestCertificate:
    def test_certificate_counts_both_borders(self):
        mfs = [(1, 2)]
        universe = [1, 2, 3]
        assert border_certificate(mfs, universe) == 1 + 1  # {(1,2)} + {(3,)}

    def test_certificate_lower_bounds_apriori_candidates(self):
        from repro.algorithms.apriori import apriori

        db = TransactionDatabase(
            [[1, 2, 3], [1, 2, 3], [2, 3, 4], [1, 4], [1, 2]]
        )
        result = apriori(db, min_count=2)
        certificate = border_certificate(result.mfs, db.universe)
        assert result.stats.total_candidates >= certificate


class TestDownwardClosed:
    def test_closed_family(self):
        assert is_downward_closed([(1,), (2,), (1, 2)])

    def test_open_family(self):
        assert not is_downward_closed([(1, 2)])

    def test_closure_output_is_closed(self):
        assert is_downward_closed(downward_closure([(1, 2, 3), (3, 4)]))

    def test_empty_family_is_closed(self):
        assert is_downward_closed([])
