"""Property-based tests (hypothesis) for the core invariants.

The single most important property of the whole reproduction: **every
miner returns exactly the maximum frequent set**, verified against the
exhaustive brute-force oracle on arbitrary small databases.  Around it,
the structural invariants of the MFCS, the cover index, the candidate
generation and the borders.
"""

from hypothesis import given, settings, strategies as st

from repro.algorithms.apriori import apriori
from repro.algorithms.brute_force import brute_force_frequents, brute_force_mfs
from repro.algorithms.topdown import top_down
from repro.borders.borders import negative_border
from repro.core.adaptive import AdaptivePolicy
from repro.core.candidates import apriori_join, apriori_prune
from repro.core.cover import CoverIndex
from repro.core.itemset import is_subset
from repro.core.lattice import downward_closure, is_antichain, maximal_elements
from repro.core.mfcs import MFCS
from repro.core.pincer import pincer_search
from repro.db.counting import available_engines, get_counter
from repro.db.transaction_db import TransactionDatabase

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

items = st.integers(min_value=1, max_value=8)
transaction = st.frozensets(items, max_size=8)
transactions = st.lists(transaction, min_size=1, max_size=16)
itemsets = st.builds(tuple, st.frozensets(items, min_size=1, max_size=5).map(sorted))
itemset_families = st.lists(itemsets, max_size=10)
min_counts = st.integers(min_value=1, max_value=6)


def build_db(raw):
    return TransactionDatabase(raw, universe=range(1, 9))


# ----------------------------------------------------------------------
# the headline property: miners == oracle
# ----------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(transactions, min_counts)
def test_pincer_pure_equals_brute_force(raw, min_count):
    db = build_db(raw)
    truth = brute_force_mfs(db, min_count=min_count)
    result = pincer_search(db, min_count=min_count, adaptive=False)
    assert set(result.mfs) == truth


@settings(max_examples=120, deadline=None)
@given(transactions, min_counts)
def test_pincer_adaptive_equals_brute_force(raw, min_count):
    db = build_db(raw)
    truth = brute_force_mfs(db, min_count=min_count)
    result = pincer_search(db, min_count=min_count, adaptive=True)
    assert set(result.mfs) == truth


@settings(max_examples=60, deadline=None)
@given(transactions, min_counts, st.integers(min_value=0, max_value=3))
def test_pincer_with_hostile_policies_equals_brute_force(raw, min_count, mode):
    # policies tuned to abandon the MFCS at awkward moments
    policy = [
        AdaptivePolicy(mfcs_size_cap=1, abandon_length_cap=1),
        AdaptivePolicy(mfcs_work_cap=1, abandon_length_cap=1),
        AdaptivePolicy(futile_passes=1, min_passes=1, abandon_length_cap=1),
        AdaptivePolicy(frequent_ratio_floor=1.0, min_ratio_sample=1,
                       abandon_length_cap=1),
    ][mode]
    db = build_db(raw)
    truth = brute_force_mfs(db, min_count=min_count)
    assert set(pincer_search(db, min_count=min_count, policy=policy).mfs) == truth


@settings(max_examples=80, deadline=None)
@given(transactions, min_counts)
def test_apriori_equals_brute_force(raw, min_count):
    db = build_db(raw)
    assert set(apriori(db, min_count=min_count).mfs) == brute_force_mfs(
        db, min_count=min_count
    )


@settings(max_examples=60, deadline=None)
@given(transactions, min_counts)
def test_top_down_equals_brute_force(raw, min_count):
    db = build_db(raw)
    assert set(top_down(db, min_count=min_count).mfs) == brute_force_mfs(
        db, min_count=min_count
    )


@settings(max_examples=50, deadline=None)
@given(transactions, min_counts)
def test_apriori_discovers_every_frequent_itemset_with_exact_support(raw, min_count):
    db = build_db(raw)
    result = apriori(db, min_count=min_count)
    truth = brute_force_frequents(db, min_count=min_count)
    for itemset_, count in truth.items():
        assert result.supports[itemset_] == count


@settings(max_examples=50, deadline=None)
@given(transactions, min_counts)
def test_mfs_is_antichain_and_supports_are_correct(raw, min_count):
    db = build_db(raw)
    result = pincer_search(db, min_count=min_count)
    assert is_antichain(result.mfs)
    for member in result.mfs:
        assert result.supports[member] == db.support_count(member)
        assert result.supports[member] >= min_count


@settings(max_examples=40, deadline=None)
@given(transactions, min_counts)
def test_frequent_itemsets_materialisation_matches_oracle(raw, min_count):
    db = build_db(raw)
    result = pincer_search(db, min_count=min_count)
    assert result.frequent_itemsets() == set(
        brute_force_frequents(db, min_count=min_count)
    )


# ----------------------------------------------------------------------
# counting engines agree
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(transactions, st.lists(itemsets, min_size=1, max_size=12))
def test_all_engines_agree_with_direct_counting(raw, candidates):
    db = build_db(raw)
    expected = {
        candidate: db.support_count(candidate) for candidate in candidates
    }
    for engine in available_engines():
        assert get_counter(engine).count(db, candidates) == expected


# ----------------------------------------------------------------------
# MFCS invariants (Definition 1)
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(st.lists(itemsets, max_size=12))
def test_mfcs_definition1_invariants(infrequents):
    universe = tuple(range(1, 9))
    mfcs = MFCS.for_universe(universe)
    for infrequent in infrequents:
        mfcs.exclude(infrequent)
    assert is_antichain(mfcs.elements)
    # (ii) no classified infrequent itemset is covered
    for infrequent in infrequents:
        assert not mfcs.covers(infrequent)
    # minimality on the lattice: removing any element loses coverage of
    # the element itself, which contains no excluded itemset
    for element in mfcs.elements:
        assert not any(
            is_subset(infrequent, element) for infrequent in infrequents
        )


@settings(max_examples=60, deadline=None)
@given(st.lists(itemsets, max_size=10))
def test_mfcs_batched_update_equals_sequential(infrequents):
    sequential = MFCS.for_universe(range(1, 9))
    for infrequent in infrequents:
        sequential.exclude(infrequent)
    batched = MFCS.for_universe(range(1, 9))
    assert batched.update(infrequents)
    assert batched.elements == sequential.elements


# ----------------------------------------------------------------------
# cover index vs linear scan
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(itemset_families, itemsets)
def test_cover_index_matches_linear_scan(family, probe):
    index = CoverIndex(family)
    assert index.covers(probe) == any(
        is_subset(probe, member) for member in family
    )
    assert sorted(index.supersets_of(probe)) == sorted(
        {member for member in family if is_subset(probe, member)}
    )


# ----------------------------------------------------------------------
# lattice / candidates / borders
# ----------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(itemset_families)
def test_maximal_elements_form_antichain_covering_family(family):
    maximal = maximal_elements(family)
    assert is_antichain(maximal)
    for member in family:
        assert any(is_subset(member, top) for top in maximal)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.builds(tuple, st.frozensets(items, min_size=2, max_size=2).map(sorted)), min_size=1, max_size=12))
def test_join_output_subsets_come_from_input(level):
    level = list(set(level))
    for candidate in apriori_join(level):
        assert len(candidate) == 3
        # the two generating subsets (drop last / drop second-to-last)
        assert candidate[:2] in level
        assert (candidate[0], candidate[2]) in level


@settings(max_examples=60, deadline=None)
@given(itemset_families)
def test_downward_closure_is_downward_closed(family):
    closure = downward_closure(family)
    for member in closure:
        for index in range(len(member)):
            subset = member[:index] + member[index + 1:]
            if subset:
                assert subset in closure


@settings(max_examples=40, deadline=None)
@given(transactions, min_counts)
def test_negative_border_members_are_minimal_infrequent(raw, min_count):
    db = build_db(raw)
    mfs = brute_force_mfs(db, min_count=min_count)
    frequents = set(brute_force_frequents(db, min_count=min_count))
    for candidate in negative_border(mfs, db.universe):
        assert candidate not in frequents
        for index in range(len(candidate)):
            subset = candidate[:index] + candidate[index + 1:]
            if subset:
                assert subset in frequents


# ----------------------------------------------------------------------
# pass/candidate accounting sanity
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(transactions, min_counts)
def test_pincer_never_needs_more_passes_than_apriori_plus_descent(raw, min_count):
    db = build_db(raw)
    pincer = pincer_search(db, min_count=min_count, adaptive=False)
    baseline = apriori(db, min_count=min_count)
    # the pure pincer may add top-down descent passes but is bounded by
    # the universe size on both sides
    assert pincer.stats.num_passes <= 2 * db.num_items + 4
    assert baseline.stats.num_passes <= db.num_items + 1


@settings(max_examples=40, deadline=None)
@given(transactions, min_counts)
def test_prune_uncovered_extension_preserves_answer(raw, min_count):
    db = build_db(raw)
    plain = pincer_search(db, min_count=min_count, adaptive=False)
    extended = pincer_search(
        db, min_count=min_count, adaptive=False, prune_uncovered=True
    )
    assert plain.mfs == extended.mfs
