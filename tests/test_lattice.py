"""Unit tests for lattice utilities (repro.core.lattice)."""

from repro.core import lattice


class TestAntichain:
    def test_antichain_true(self):
        assert lattice.is_antichain([(1, 2), (2, 3), (1, 3)])

    def test_antichain_false_on_subset(self):
        assert not lattice.is_antichain([(1,), (1, 2)])

    def test_antichain_of_empty_family(self):
        assert lattice.is_antichain([])

    def test_antichain_ignores_duplicates(self):
        assert lattice.is_antichain([(1, 2), (1, 2)])


class TestMaximalMinimal:
    def test_maximal_elements(self):
        family = [(1,), (1, 2), (3,), (1, 2), (2,)]
        assert lattice.maximal_elements(family) == {(1, 2), (3,)}

    def test_maximal_of_antichain_is_identity(self):
        family = {(1, 2), (3, 4)}
        assert lattice.maximal_elements(family) == family

    def test_maximal_of_empty(self):
        assert lattice.maximal_elements([]) == set()

    def test_maximal_with_long_chains(self):
        chain = [tuple(range(length)) for length in range(1, 9)]
        assert lattice.maximal_elements(chain) == {tuple(range(8))}

    def test_minimal_elements(self):
        family = [(1,), (1, 2), (3,), (2, 3)]
        assert lattice.minimal_elements(family) == {(1,), (3,)}

    def test_minimal_of_empty(self):
        assert lattice.minimal_elements([]) == set()


class TestClosure:
    def test_downward_closure(self):
        assert lattice.downward_closure([(1, 2)]) == {(1,), (2,), (1, 2)}

    def test_downward_closure_merges_members(self):
        closure = lattice.downward_closure([(1, 2), (2, 3)])
        assert closure == {(1,), (2,), (3,), (1, 2), (2, 3)}

    def test_downward_closure_size_of_single_member(self):
        closure = lattice.downward_closure([tuple(range(5))])
        assert len(closure) == 2 ** 5 - 1

    def test_covers(self):
        assert lattice.covers([(1, 2, 3)], (1, 3))
        assert not lattice.covers([(1, 2, 3)], (4,))

    def test_covered_count(self):
        assert lattice.covered_count([(1, 2)]) == 3


class TestCounting:
    def test_implied_frequent_count(self):
        # the paper's 2^l - 2 nontrivial subsets
        assert lattice.implied_frequent_count(3) == 6
        assert lattice.implied_frequent_count(17) == 2 ** 17 - 2

    def test_implied_frequent_count_degenerate(self):
        assert lattice.implied_frequent_count(0) == 0

    def test_level_width(self):
        assert lattice.level_width(5, 2) == 10
        assert lattice.level_width(5, 0) == 1

    def test_lattice_size(self):
        assert lattice.lattice_size(3) == 7

    def test_level_of(self):
        family = {(1,), (2, 3), (1, 2)}
        assert lattice.level_of(family, 2) == {(2, 3), (1, 2)}

    def test_levels(self):
        assert list(lattice.levels([(1,), (2, 3), (4,)])) == [1, 2]
