"""Unit tests for the counting engines (repro.db.counting)."""

import random

import pytest

from repro.db.counting import (
    available_engines,
    count_pairs,
    count_singletons,
    get_counter,
)
from repro.db.transaction_db import TransactionDatabase


def small_db():
    return TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 2, 3, 4], [4]], universe=range(1, 6)
    )


CANDIDATES = [(1,), (2,), (5,), (1, 2), (1, 4), (2, 3), (1, 2, 3), (1, 2, 3, 4)]
EXPECTED = {
    (1,): 3, (2,): 4, (5,): 0, (1, 2): 3, (1, 4): 1, (2, 3): 3,
    (1, 2, 3): 2, (1, 2, 3, 4): 1,
}


class TestAllEngines:
    @pytest.mark.parametrize("engine", available_engines())
    def test_counts_match_ground_truth(self, engine):
        counter = get_counter(engine)
        assert counter.count(small_db(), CANDIDATES) == EXPECTED

    @pytest.mark.parametrize("engine", available_engines())
    def test_empty_candidates_cost_nothing(self, engine):
        counter = get_counter(engine)
        assert counter.count(small_db(), []) == {}
        assert counter.passes == 0
        assert counter.records_read == 0

    @pytest.mark.parametrize("engine", available_engines())
    def test_pass_accounting(self, engine):
        counter = get_counter(engine)
        db = small_db()
        counter.count(db, [(1,)])
        counter.count(db, [(2,), (1, 2)])
        assert counter.passes == 2
        assert counter.records_read == 2 * len(db)
        assert counter.itemsets_counted == 3

    @pytest.mark.parametrize("engine", available_engines())
    def test_reset(self, engine):
        counter = get_counter(engine)
        counter.count(small_db(), [(1,)])
        counter.reset()
        assert counter.passes == 0
        assert counter.records_read == 0
        assert counter.itemsets_counted == 0

    @pytest.mark.parametrize("engine", available_engines())
    def test_duplicate_candidates_counted_once(self, engine):
        counter = get_counter(engine)
        counts = counter.count(small_db(), [(1,), (1,)])
        assert counts == {(1,): 3}
        assert counter.itemsets_counted == 1

    @pytest.mark.parametrize("engine", available_engines())
    def test_empty_itemset_supported_by_all_transactions(self, engine):
        counter = get_counter(engine)
        assert counter.count(small_db(), [()]) == {(): 5}

    @pytest.mark.parametrize("engine", available_engines())
    def test_mixed_lengths_single_pass(self, engine):
        counter = get_counter(engine)
        counts = counter.count(small_db(), [(1,), (1, 2, 3), (2, 3)])
        assert counter.passes == 1
        assert counts[(1, 2, 3)] == 2

    @pytest.mark.parametrize("engine", available_engines())
    def test_randomised_agreement_with_naive_scan(self, engine):
        rng = random.Random(3)
        transactions = [
            rng.sample(range(1, 15), rng.randint(0, 8)) for _ in range(60)
        ]
        db = TransactionDatabase(transactions, universe=range(1, 15))
        candidates = [
            tuple(sorted(rng.sample(range(1, 15), rng.randint(1, 4))))
            for _ in range(40)
        ]
        counts = get_counter(engine).count(db, candidates)
        for candidate in candidates:
            assert counts[candidate] == db.support_count(candidate), (
                engine, candidate,
            )


class TestFactory:
    def test_default_engine(self):
        assert get_counter().name == "bitmap"
        assert get_counter("auto").name == "bitmap"

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown counting engine"):
            get_counter("btree")

    def test_available_engines_is_sorted(self):
        engines = available_engines()
        assert engines == sorted(engines)
        assert {"naive", "bitmap", "hashtree", "trie"} <= set(engines)


class TestArrayFastPaths:
    def test_count_singletons_includes_zero_support_items(self):
        counts = count_singletons(small_db())
        assert counts[(5,)] == 0
        assert counts[(2,)] == 4
        assert len(counts) == 5

    def test_count_pairs_over_frequent_items(self):
        counts = count_pairs(small_db(), [1, 2, 3])
        assert counts[(1, 2)] == 3
        assert counts[(2, 3)] == 3
        assert counts[(1, 3)] == 2

    def test_count_pairs_reports_zero_cooccurrence(self):
        db = TransactionDatabase([[1], [2]])
        assert count_pairs(db, [1, 2]) == {(1, 2): 0}

    def test_count_pairs_ignores_other_items(self):
        counts = count_pairs(small_db(), [1, 4])
        assert counts == {(1, 4): 1}


class TestBitmapPrefixCache:
    def test_warm_start_across_passes(self):
        counter = get_counter("bitmap")
        db = small_db()
        counter.count(db, [(1, 2)])
        hits_before = counter.prefix_cache_hits
        # the 2-prefix of pass 3 is exactly the pass-2 candidate
        counter.count(db, [(1, 2, 3)])
        assert counter.prefix_cache_hits >= hits_before + 2

    def test_new_database_invalidates_cache(self):
        counter = get_counter("bitmap")
        counter.count(small_db(), [(1, 2)])
        other = TransactionDatabase([[1], [1, 2]], universe=range(1, 6))
        assert counter.count(other, [(1, 2)])[(1, 2)] == 1
        assert counter.count(other, [(1,)])[(1,)] == 2

    def test_eviction_accounting_with_tiny_capacity(self):
        counter = get_counter("bitmap")
        counter.CACHE_CAPACITY_PER_LEVEL = 1
        db = small_db()
        counter.count(db, [(1, 2), (2, 3), (3, 4)])
        assert counter.prefix_cache_evictions > 0
        # exactness is unaffected by evictions
        assert counter.count(db, CANDIDATES) == EXPECTED

    def test_obs_metrics_emitted(self):
        from repro.obs.instrument import Instrumentation

        counter = get_counter("bitmap")
        counter.obs = obs = Instrumentation()
        counter.count(small_db(), [(1, 2), (1, 2, 3)])
        assert obs.metrics.counter("prefix_cache.misses").value > 0
        assert obs.metrics.gauge("engine.prefix_cache.size").value > 0

    def test_reset_clears_cache_state(self):
        counter = get_counter("bitmap")
        db = small_db()
        counter.count(db, [(1, 2)])
        counter.reset()
        assert counter.prefix_cache_hits == 0
        assert counter.prefix_cache_misses == 0
        assert counter._cache is None
        assert counter.count(db, [(1, 2)])[(1, 2)] == 3
