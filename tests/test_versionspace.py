"""Tests for the version-space view of the search (repro.core.versionspace)."""

import pytest

from repro.core.pincer import pincer_search
from repro.core.versionspace import (
    InconsistentInstance,
    VersionSpace,
    replay_mining_run,
)
from repro.db.transaction_db import TransactionDatabase


class TestBoundaries:
    def test_initial_boundaries(self):
        space = VersionSpace([1, 2, 3])
        assert space.specific_boundary == set()
        assert space.general_boundary == {(1, 2, 3)}

    def test_positive_generalises_s(self):
        space = VersionSpace([1, 2, 3])
        space.add_positive((1, 2))
        assert space.specific_boundary == {(1, 2)}
        space.add_positive((1,))  # already entailed: no change
        assert space.specific_boundary == {(1, 2)}

    def test_positive_swallows_weaker_members(self):
        space = VersionSpace([1, 2, 3])
        space.add_positive((1,))
        space.add_positive((1, 2))
        assert space.specific_boundary == {(1, 2)}

    def test_negative_specialises_g(self):
        space = VersionSpace([1, 2, 3])
        space.add_negative((2, 3))
        assert space.general_boundary == {(1, 2), (1, 3)}

    def test_g_update_is_mfcs_gen(self):
        space = VersionSpace([1, 2, 3, 4, 5, 6])
        space.add_negative((1, 6))
        space.add_negative((3, 6))
        # the paper's Section 3.2 worked example
        assert space.general_boundary == {(1, 2, 3, 4, 5), (2, 4, 5, 6)}


class TestConsistency:
    def test_positive_above_negative_rejected(self):
        space = VersionSpace([1, 2, 3])
        space.add_negative((1, 2))
        with pytest.raises(InconsistentInstance):
            space.add_positive((1, 2, 3))

    def test_negative_below_positive_rejected(self):
        space = VersionSpace([1, 2, 3])
        space.add_positive((1, 2))
        with pytest.raises(InconsistentInstance):
            space.add_negative((1,))

    def test_observe_routes_labels(self):
        space = VersionSpace([1, 2, 3])
        space.observe((1, 2), True)
        space.observe((3,), False)
        assert space.specific_boundary == {(1, 2)}
        assert space.general_boundary == {(1, 2)}


class TestClassification:
    def space(self):
        space = VersionSpace([1, 2, 3, 4])
        space.add_positive((1, 2))
        space.add_negative((3, 4))
        return space

    def test_entailed_positive(self):
        assert self.space().classifies_positive((1,))
        assert self.space().classifies_positive((1, 2))

    def test_entailed_negative(self):
        assert self.space().classifies_negative((3, 4))
        assert self.space().classifies_negative((1, 3, 4))

    def test_ambiguous_region(self):
        space = self.space()
        assert space.is_ambiguous((1, 3))
        assert (1, 3) in space.ambiguous_region()
        assert not space.is_ambiguous((1, 2))

    def test_convergence(self):
        space = VersionSpace([1, 2, 3])
        assert not space.has_converged()
        space.add_positive((1, 2))
        space.add_negative((3,))
        # G is now {(1,2)}: closures agree
        assert space.has_converged()
        assert space.ambiguous_region() == set()


class TestReplay:
    def test_replaying_a_mining_run_converges_to_its_mfs(self):
        db = TransactionDatabase(
            [[1, 2, 3]] * 4 + [[1, 2]] * 2 + [[4]] * 2 + [[1, 4]]
        )
        result = pincer_search(db, min_count=2, adaptive=False)
        classified = [
            (itemset_, count >= result.min_support_count)
            for itemset_, count in sorted(
                result.supports.items(), key=lambda pair: (len(pair[0]), pair[0])
            )
            if itemset_
        ]
        space = replay_mining_run(db.universe, classified)
        # G's closure must cover the true MFS, and every G member must be
        # consistent with the run's classifications
        for member in result.mfs:
            assert not space.classifies_negative(member)
        assert space.specific_boundary <= set(result.mfs) | {
            member
            for member in space.specific_boundary
        }

    def test_full_classification_converges_exactly(self):
        db = TransactionDatabase([[1, 2]] * 3 + [[3]] * 2)
        from repro.algorithms.brute_force import brute_force_frequents
        from itertools import combinations

        frequents = brute_force_frequents(db, min_count=2)
        labels = []
        for size in range(1, 4):
            for candidate in combinations(db.universe, size):
                labels.append((candidate, candidate in frequents))
        space = replay_mining_run(db.universe, labels)
        assert space.has_converged()
        assert space.specific_boundary == {(1, 2), (3,)}
        assert space.general_boundary == {(1, 2), (3,)}
