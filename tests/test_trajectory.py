"""Tests for the bench trajectory and the regression sentinel."""

import json
import os

import pytest

from repro.bench.regress import check_trajectory, main as regress_main
from repro.bench.trajectory import (
    append_entry,
    extract_seconds_metrics,
    git_sha,
    load_trajectory,
    make_entry,
    record_run,
)


def _record(seconds=1.0, benchmark="counting-engines"):
    return {
        "benchmark": benchmark,
        "database": "T10.I4.D100K",
        "num_transactions": 2000,
        "min_support_percent": 1.5,
        "engines": {
            "bitmap": {"seconds": seconds, "passes": 4},
            "packed": {"seconds": seconds / 2, "passes": 4},
        },
        "cpu_count": 8,
    }


def _entry(seconds=1.0, host=None, sha="abc", **overrides):
    entry = make_entry(_record(seconds), sha=sha, timestamp=123.0)
    if host is not None:
        entry["host"] = host
    entry.update(overrides)
    return entry


class TestExtractSecondsMetrics:
    def test_flattens_nested_seconds_leaves(self):
        metrics = extract_seconds_metrics(_record(2.0))
        assert metrics == {
            "engines.bitmap.seconds": 2.0,
            "engines.packed.seconds": 1.0,
        }

    def test_obs_overhead_record_kind(self):
        record = {
            "benchmark": "obs-overhead",
            "mine_seconds_disabled": 0.5,
            "mine_seconds_enabled": 0.6,
            "count_seconds_raw": 0.1,
            "overhead_disabled_pct": 1.2,
        }
        metrics = extract_seconds_metrics(record)
        assert set(metrics) == {
            "mine_seconds_disabled",
            "mine_seconds_enabled",
            "count_seconds_raw",
        }

    def test_seconds_named_dict_marks_its_leaves(self):
        record = {
            "benchmark": "lattice-kernels",
            "replay_seconds": {"tuple": 0.4, "bitmask": 0.1},
            "totals": {"tuple": {"candidate_generation": 0.2}},
        }
        metrics = extract_seconds_metrics(record)
        assert metrics == {
            "replay_seconds.tuple": 0.4,
            "replay_seconds.bitmask": 0.1,
        }

    def test_skips_lists_bools_and_negatives(self):
        record = {
            "last_shard_seconds": [0.1, 0.2],
            "seconds": -1.0,
            "seconds_flag": True,
            "inner": {"seconds": 3.0},
        }
        assert extract_seconds_metrics(record) == {"inner.seconds": 3.0}


class TestTrajectoryFile:
    def test_record_run_appends_and_loads(self, tmp_path):
        path = str(tmp_path / "nested" / "trajectory.jsonl")
        first = record_run(_record(1.0), path, sha="sha-1")
        second = record_run(_record(1.1), path, sha="sha-2")
        assert first["type"] == "bench_entry"
        entries = load_trajectory(path)
        assert [e["git_sha"] for e in entries] == ["sha-1", "sha-2"]
        assert entries[0]["key"] == entries[1]["key"]
        assert "metrics" in entries[0] and "host" in entries[0]

    def test_record_run_skips_without_path(self):
        assert record_run(_record(), None) is None
        assert record_run(_record(), "") is None

    def test_load_rejects_non_entries(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\n')
        with pytest.raises(ValueError):
            load_trajectory(str(path))
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_trajectory(str(path))

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        assert git_sha() == "deadbeef"


class TestCheckTrajectory:
    def test_fresh_baseline_passes(self):
        report = check_trajectory([_entry(1.0)])
        assert report.ok
        assert report.fresh_keys and not report.comparisons

    def test_steady_history_passes(self):
        entries = [_entry(1.0, sha="a"), _entry(1.02, sha="b"), _entry(0.98, sha="c")]
        report = check_trajectory(entries)
        assert report.ok
        assert report.comparisons

    def test_injected_2x_slowdown_fails(self):
        entries = [_entry(1.0, sha="a"), _entry(1.0, sha="b"), _entry(2.0, sha="slow")]
        report = check_trajectory(entries, threshold=1.5)
        assert not report.ok
        assert all(r["latest_git_sha"] == "slow" for r in report.regressions)

    def test_baseline_is_median_of_window(self):
        # one lucky 0.1s run must not flag a normal 1.0s run
        entries = [
            _entry(1.0, sha="a"),
            _entry(0.1, sha="lucky"),
            _entry(1.0, sha="c"),
            _entry(1.05, sha="d"),
        ]
        report = check_trajectory(entries, threshold=1.5, window=3)
        assert report.ok

    def test_noise_floor_suppresses_tiny_metrics(self):
        entries = [_entry(0.001, sha="a"), _entry(0.004, sha="b")]
        report = check_trajectory(entries, threshold=1.5)
        assert report.ok and not report.regressions

    def test_cross_host_baseline_skipped_by_default(self):
        other = {"cpu_count": 1, "platform": "other-box", "python": "3.9.0"}
        entries = [_entry(1.0, host=other, sha="a"), _entry(3.0, sha="b")]
        report = check_trajectory(entries)
        assert report.ok
        assert report.skipped_keys
        report = check_trajectory(entries, allow_cross_host=True)
        assert not report.ok

    def test_benchmark_filter(self):
        entries = [
            _entry(1.0, sha="a"),
            _entry(3.0, sha="b"),
        ]
        report = check_trajectory(entries, benchmark="lattice-kernels")
        assert report.ok and not report.comparisons

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            check_trajectory([], threshold=1.0)
        with pytest.raises(ValueError):
            check_trajectory([], window=0)


class TestRegressCli:
    def _write(self, tmp_path, entries):
        path = str(tmp_path / "trajectory.jsonl")
        for entry in entries:
            append_entry(path, entry)
        return path

    def test_exit_zero_on_fresh_baseline(self, tmp_path, capsys):
        path = self._write(tmp_path, [_entry(1.0)])
        assert regress_main(["--trajectory", path]) == 0
        assert "fresh" in capsys.readouterr().out

    def test_exit_one_on_regression_with_json_report(self, tmp_path, capsys):
        path = self._write(
            tmp_path, [_entry(1.0, sha="a"), _entry(2.5, sha="slow")]
        )
        out = tmp_path / "report.json"
        assert regress_main(["--trajectory", path, "--json", str(out)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        report = json.loads(out.read_text())
        assert report["ok"] is False and report["regressions"]

    def test_exit_two_on_unreadable_trajectory(self, tmp_path, capsys):
        missing = str(tmp_path / "missing.jsonl")
        assert regress_main(["--trajectory", missing]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_env_default_path(self, tmp_path, monkeypatch, capsys):
        path = self._write(tmp_path, [_entry(1.0)])
        monkeypatch.setenv("REPRO_BENCH_TRAJECTORY", path)
        assert regress_main([]) == 0
        capsys.readouterr()
