"""Resident sessions, the cross-threshold cache, and warm-start seeding.

The load-bearing property is *exact reuse*: a session answering from its
cache and a warm-started MFCS must produce byte-identical results to a
cold one-shot mine at the same threshold.  The randomized ladder here
drives that differentially on both the serial and shm engines.
"""

import random

import pytest

from repro.core.bitset import ItemUniverse
from repro.core.kernel import BitmaskKernel, TupleKernel
from repro.core.pincer import PincerSearch, pincer_search
from repro.core.session import MiningSession, SessionClosedError
from repro.core.supportcache import CachedSupportCounter, SupportCache
from repro.db.base import EngineClosedError, SupportCounter
from repro.db.counting import get_counter
from repro.db.parallel import AdaptiveShardScheduler
from repro.db.transaction_db import TransactionDatabase
from repro.obs import capture


def random_db(seed: int, num_items: int = 24, rows: int = 300):
    rng = random.Random(seed)
    items = list(range(1, num_items + 1))
    return TransactionDatabase(
        [
            rng.sample(items, rng.randint(2, max(3, num_items // 3)))
            for _ in range(rows)
        ]
    )


class TestSupportCache:
    def test_put_get_roundtrip(self):
        cache = SupportCache(ItemUniverse(range(10)))
        cache.put((1, 2), 7)
        assert cache.get((1, 2)) == 7
        assert cache.get((1, 3)) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_partition_splits_and_dedups(self):
        cache = SupportCache(ItemUniverse(range(10)))
        cache.put((1,), 5)
        hits, misses = cache.partition([(1,), (2,), (1,), (2,)])
        assert hits == {(1,): 5}
        assert misses == [(2,)]

    def test_rotation_never_corrupts(self):
        rng = random.Random(11)
        cache = SupportCache(ItemUniverse(range(40)), max_entries=50)
        reference = {}
        for _ in range(3000):
            key = tuple(sorted(rng.sample(range(40), rng.randint(1, 4))))
            value = rng.randint(0, 10_000)
            cache.put(key, value)
            reference[key] = value
            probe = rng.choice(list(reference))
            got = cache.get(probe)
            # bounded cache may have evicted, but must never be wrong
            assert got is None or got == reference[probe]
        assert cache.rotations > 0
        assert len(cache) <= cache.max_entries

    def test_foreign_items_dropped_at_rotation(self):
        universe = ItemUniverse(range(5))
        cache = SupportCache(universe)
        cache.put((99,), 3)  # not in the universe: young-only
        cache.put((1,), 2)
        assert cache.get((99,)) == 3
        compressed = cache._compress_young()
        assert set(compressed) == {universe.try_mask_of((1,))}


class TestCachedCounter:
    def test_all_hit_batch_bills_no_pass(self):
        db = random_db(1)
        cache = SupportCache(ItemUniverse(db.universe))
        counter = CachedSupportCounter(get_counter("bitmap"), cache)
        first = counter.count(db, [(1,), (2,)])
        passes = counter.passes
        second = counter.count(db, [(1,), (2,)])
        assert second == first
        assert counter.passes == passes  # no pass billed on the repeat

    def test_partial_hit_forwards_only_misses(self):
        db = random_db(2)
        cache = SupportCache(ItemUniverse(db.universe))
        counter = CachedSupportCounter(get_counter("bitmap"), cache)
        counter.count(db, [(1,)])
        before = counter.inner.itemsets_counted
        merged = counter.count(db, [(1,), (2,)])
        assert set(merged) == {(1,), (2,)}
        assert counter.inner.itemsets_counted == before + 1

    def test_results_match_uncached_engine(self):
        db = random_db(3)
        cache = SupportCache(ItemUniverse(db.universe))
        cached = CachedSupportCounter(get_counter("bitmap"), cache)
        plain = get_counter("bitmap")
        batch = [(i,) for i in db.universe] + [(1, 2), (2, 3)]
        assert cached.count(db, batch) == plain.count(db, batch)
        # and again, now fully from cache
        assert cached.count(db, batch) == plain.count(db, batch)

    def test_delegation_reads_and_writes_inner(self):
        inner = get_counter("bitmap")
        counter = CachedSupportCounter(
            inner, SupportCache(ItemUniverse(range(4)))
        )
        counter.deadline = 123.0
        assert inner.deadline == 123.0
        assert counter.name == inner.name
        counter.close()
        assert inner.closed

    def test_cache_metrics_emitted(self, tmp_path):
        db = random_db(4)
        obs = capture(metrics_path=str(tmp_path / "metrics.json"))
        cache = SupportCache(ItemUniverse(db.universe))
        counter = CachedSupportCounter(get_counter("bitmap"), cache)
        counter.obs = obs
        counter.count(db, [(1,), (2,)])
        counter.count(db, [(1,), (2,)])
        counters = obs.metrics.to_dict()["counters"]
        assert counters["cache.hits"] == 2
        assert counters["cache.misses"] == 2
        obs.finish()


class TestEngineLifetime:
    @pytest.mark.parametrize("engine", ["bitmap", "packed"])
    def test_close_is_idempotent_and_seals(self, engine):
        db = random_db(5)
        counter = get_counter(engine)
        counter.count(db, [(1,)])
        counter.close()
        counter.close()  # idempotent
        with pytest.raises(EngineClosedError):
            counter.count(db, [(1,)])

    def test_base_close_guard(self):
        counter = SupportCounter()
        counter.close()
        counter.close()
        with pytest.raises(EngineClosedError):
            counter.count(random_db(6), [(1,)])


class TestSchedulerReset:
    def test_reset_query_clears_miner_rate_only(self):
        scheduler = AdaptiveShardScheduler(num_workers=2)
        scheduler.note_miner_rate(5000.0)
        scheduler.observe("rows", 100, 0.5)
        assert scheduler._miner_rate is not None
        scheduler.reset_query()
        assert scheduler._miner_rate is None
        # per-mode EWMAs describe the machine, not the query: they stay
        assert scheduler._rates["rows"] is not None

    def test_begin_query_reaches_shm_scheduler(self):
        from repro.db.shm import ShmShardedCounter

        db = random_db(7, rows=600)
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(db, [(1,), (2,)])
            counter.note_pass_rate(1234.0)
            if counter._scheduler is not None:
                assert counter._scheduler._miner_rate is not None
                counter.begin_query()
                assert counter._scheduler._miner_rate is None


class TestMakeMfcsFrom:
    @pytest.mark.parametrize(
        "kernel", [TupleKernel(), BitmaskKernel(range(1, 8))]
    )
    def test_seed_keeps_only_maximal_members(self, kernel):
        mfcs = kernel.make_mfcs_from([(1, 2), (1, 2, 3), (4,)])
        assert sorted(mfcs) == [(1, 2, 3), (4,)]

    def test_empty_seed_is_empty(self):
        assert len(TupleKernel().make_mfcs_from([])) == 0


class TestMiningSession:
    def test_results_equal_cold_across_thresholds(self):
        db = random_db(8)
        with MiningSession(db, engine="bitmap") as session:
            for support in (0.02, 0.08, 0.04, 0.08, 0.02):
                warm = session.mine(support)
                cold = pincer_search(db, support)
                assert warm.mfs == cold.mfs
                assert warm.min_support_count == cold.min_support_count

    def test_repeat_query_is_mostly_cached(self):
        db = random_db(9)
        with MiningSession(db, engine="bitmap") as session:
            session.mine(0.05)
            passes = session.counter.passes
            result = session.mine(0.05)
            assert session.counter.passes <= passes + 1
            assert result.mfs == pincer_search(db, 0.05).mfs

    def test_close_is_idempotent_then_queries_raise(self):
        session = MiningSession(random_db(10), engine="bitmap")
        session.mine(0.1)
        session.close()
        session.close()
        with pytest.raises(SessionClosedError):
            session.mine(0.1)

    def test_estimate_cost_cheapens_after_warmup(self):
        db = random_db(11)
        with MiningSession(db, engine="bitmap") as session:
            cold = session.estimate_cost(0.05)
            assert not cold["warm"]
            session.mine(0.05)
            warm = session.estimate_cost(0.05)
            assert warm["warm"]
            assert warm["singletons_known"]
            higher = session.estimate_cost(0.2)
            assert higher["warm"]  # family at 0.05 seeds 0.2
            lower = session.estimate_cost(0.01)
            assert not lower["warm"]  # nothing mined at or below 0.01

    def test_stats_shape(self):
        with MiningSession(random_db(12), engine="bitmap") as session:
            session.mine(0.1)
            stats = session.stats()
            assert stats["queries"] == 1
            assert stats["cache"]["entries"] > 0
            assert stats["mined_thresholds"]

    def test_rules_reuse_session_counter(self):
        db = random_db(13)
        with MiningSession(db, engine="bitmap") as session:
            session.mine(0.05)
            passes = session.counter.inner.passes
            rules = session.rules(0.05, min_confidence=0.5)
            # warm re-mine + per-level expansion: a handful of passes at
            # most, far from a cold restart's full ladder
            assert session.counter.inner.passes <= passes + 4
            assert isinstance(rules, list)


ENGINES = ["bitmap", "shm"]


class TestRequestContext:
    def test_mine_fills_timings_and_span_sink(self, tmp_path):
        db = random_db(11)
        obs = capture(trace_path=str(tmp_path / "t.jsonl"))
        with MiningSession(db, engine="bitmap", obs=obs) as session:
            spans = []
            timings = {}
            session.mine(
                0.05, request_id="req-9", span_sink=spans, timings=timings
            )
        obs.finish()
        assert timings["queue_wait_s"] >= 0.0
        assert spans, "bound sink must collect the query's closed spans"
        assert all(
            e["attrs"]["request_id"] == "req-9" for e in spans
        )
        assert "run" in {e["name"] for e in spans}

    def test_counting_rate_calibrates_from_cache_misses(self):
        db = random_db(13)
        with MiningSession(db, engine="bitmap") as session:
            assert session.rate.rate is None
            session.mine(0.05)  # cold: counted passes feed the EWMA
            calibrated = session.rate.rate
            assert calibrated is not None and calibrated > 0
            session.mine(0.05)  # all-cached repeat must not inflate it
            assert session.rate.rate == calibrated
            assert session.stats()["counting_rate"] is not None


class TestWarmStartRandomized:
    """ISSUE satellite: for any dataset and s1 < s2, warm-started MFS at
    s2 is byte-identical to cold MFS at s2, serial and shm engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_warm_equals_cold_at_higher_threshold(self, engine, seed):
        rng = random.Random(seed)
        db = random_db(seed, num_items=rng.randint(10, 30), rows=400)
        s1 = rng.uniform(0.01, 0.06)
        s2 = s1 + rng.uniform(0.01, 0.1)
        cold = PincerSearch(engine=engine).mine(db, s2)
        with MiningSession(db, engine=engine) as session:
            session.mine(s1)  # warms cache + seeds the ledger
            warm = session.mine(s2)
        assert sorted(warm.mfs) == sorted(cold.mfs)
        assert warm.min_support_count == cold.min_support_count
        for member in warm.mfs:
            assert warm.supports[member] == cold.supports[member]

    @pytest.mark.parametrize("seed", [17, 29])
    def test_downward_query_reuses_classifications(self, seed):
        db = random_db(seed)
        with MiningSession(db, engine="bitmap") as session:
            session.mine(0.08)
            hits_before = session.cache.hits
            low = session.mine(0.02)
        assert session.cache.hits > hits_before
        assert sorted(low.mfs) == sorted(pincer_search(db, 0.02).mfs)

    def test_explicit_seed_matches_cold(self):
        db = random_db(31)
        low = pincer_search(db, 0.02)
        cold = pincer_search(db, 0.06)
        seeded = pincer_search(db, 0.06, initial_mfcs=sorted(low.mfs))
        assert sorted(seeded.mfs) == sorted(cold.mfs)
