"""Unit and differential tests for MaskCover (repro.core.cover)."""

import random

import pytest

from repro.core.bitset import ItemUniverse
from repro.core.cover import CoverIndex, MaskCover


UNIVERSE_ITEMS = list(range(1, 25))


def fresh(members=()):
    return MaskCover(ItemUniverse(UNIVERSE_ITEMS), members)


class TestContainerProtocol:
    def test_empty(self):
        cover = fresh()
        assert len(cover) == 0
        assert not cover
        assert not cover.covers((1,))
        assert not cover.covers(())

    def test_add_and_contains_exact(self):
        cover = fresh()
        assert cover.add((1, 2))
        assert (1, 2) in cover
        assert (1,) not in cover
        assert not cover.add((1, 2))
        assert len(cover) == 1

    def test_members_decode_to_canonical_tuples(self):
        universe = ItemUniverse(UNIVERSE_ITEMS)
        cover = MaskCover(universe)
        # add by mask: decode has no interned tuple to reuse and must
        # produce the canonical (sorted) form
        cover.add_mask(universe.raw_mask_of((1, 2, 3)))
        cover.add((5,))
        assert sorted(cover.members) == [(1, 2, 3), (5,)]
        assert sorted(cover) == [(1, 2, 3), (5,)]

    def test_repr_mentions_size(self):
        assert "2 members" in repr(fresh([(1,), (2,)]))

    def test_empty_probe_covered_when_nonempty(self):
        assert fresh([(1,)]).covers(())
        assert fresh([(1,)]).covers_mask(0)


class TestMaskQueries:
    def test_covers_subset(self):
        cover = fresh([(1, 2, 3)])
        assert cover.covers((1, 3))
        assert cover.covers((1, 2, 3))
        assert not cover.covers((1, 4))

    def test_covers_strictly_excludes_equality(self):
        cover = fresh([(1, 2)])
        assert not cover.covers_strictly((1, 2))
        assert cover.covers_strictly((1,))
        cover.add((1, 2, 3))
        assert cover.covers_strictly((1, 2))

    def test_supersets_of(self):
        cover = fresh([(1, 2), (1, 2, 3), (4, 5)])
        assert sorted(cover.supersets_of((1, 2))) == [(1, 2), (1, 2, 3)]
        assert cover.supersets_of((9,)) == []

    def test_supersets_masks_roundtrip(self):
        universe = ItemUniverse(UNIVERSE_ITEMS)
        cover = MaskCover(universe, [(1, 2), (1, 2, 3)])
        probe = universe.mask_of((1, 2))
        masks = cover.supersets_masks(probe)
        decoded = sorted(universe.itemset_of(mask) for mask in masks)
        assert decoded == [(1, 2), (1, 2, 3)]

    def test_verification_path_on_long_probe(self):
        # a probe wider than the cutoff forces the witness-verification
        # branch of _matches_mask; result must stay exact
        cover = fresh([tuple(range(1, 21)), (22, 23)])
        assert len(tuple(range(1, 21))) > MaskCover._PROBE_CUTOFF
        assert cover.covers(tuple(range(1, 21)))
        assert cover.covers(tuple(range(2, 20)))
        assert not cover.covers(tuple(range(1, 22)))  # 21 not covered

    def test_query_counters_move(self):
        cover = fresh([(1, 2, 3)])
        before = (cover.queries, cover.node_visits)
        cover.covers((1, 2))
        assert cover.queries == before[0] + 1
        assert cover.node_visits > before[1]


class TestLazyDiscardAndSlotReuse:
    def test_discard_is_lazy(self):
        universe = ItemUniverse(UNIVERSE_ITEMS)
        cover = MaskCover(universe, [(1, 2, 3)])
        mask = universe.mask_of((1, 2, 3))
        assert cover.discard_mask(mask)
        assert not cover.covers((1, 2))
        assert len(cover) == 0
        # the table bits are intentionally stale; queries must not see them
        assert any(cover._table)
        assert not cover.discard_mask(mask)

    def test_scrub_on_reuse_keeps_queries_exact(self):
        universe = ItemUniverse(UNIVERSE_ITEMS)
        cover = MaskCover(universe, [(1, 2, 3)])
        cover.discard_mask(universe.mask_of((1, 2, 3)))
        # reuses the freed slot: item 3's stale bit must be scrubbed and
        # item 4's bit set
        cover.add_mask(universe.mask_of((1, 2, 4)))
        assert cover.covers((1, 4))
        assert not cover.covers((3,))
        assert sorted(cover.members) == [(1, 2, 4)]

    def test_interleaved_churn_matches_coverindex(self):
        rng = random.Random(7)
        universe = ItemUniverse(UNIVERSE_ITEMS)
        mask_cover = MaskCover(universe)
        reference = CoverIndex()
        pool = [
            tuple(sorted(rng.sample(UNIVERSE_ITEMS, rng.randint(1, 6))))
            for _ in range(60)
        ]
        for step in range(400):
            member = rng.choice(pool)
            if rng.random() < 0.4:
                assert mask_cover.discard(member) == reference.discard(member)
            else:
                assert mask_cover.add(member) == reference.add(member)
            probe = rng.choice(pool)
            assert mask_cover.covers(probe) == reference.covers(probe)
            assert mask_cover.covers_strictly(probe) == (
                reference.covers_strictly(probe)
            )
            assert sorted(mask_cover.supersets_of(probe)) == sorted(
                reference.supersets_of(probe)
            )
        assert sorted(mask_cover.members) == sorted(reference.members)


class TestForeignMembers:
    def test_foreign_members_delegate(self):
        cover = fresh([(1, 2)])
        assert not cover.has_foreign
        assert cover.add((100, 200))  # outside the universe
        assert cover.has_foreign
        assert (100, 200) in cover
        assert cover.covers((100,))
        assert sorted(cover.supersets_of((100,))) == [(100, 200)]
        assert len(cover) == 2

    def test_foreign_discard(self):
        cover = fresh([(100, 200)])
        assert cover.discard((100, 200))
        assert not cover.covers((100,))
        assert not cover.discard((100, 200))

    def test_mask_queries_skip_foreign(self):
        # documented contract: covers_mask sees in-universe members only
        cover = fresh([(100, 200)])
        assert cover.covers((100,))
        assert not cover.covers_mask(0)
        assert cover.member_masks == []
