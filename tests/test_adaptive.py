"""Unit tests for the adaptivity policy (repro.core.adaptive)."""

import pytest

from repro.core.adaptive import AdaptivePolicy, AlwaysMaintain, NeverMaintain


class TestDefaults:
    def test_fresh_policy_keeps_mfcs(self):
        policy = AdaptivePolicy()
        assert policy.keep_mfcs(1, 10, 100, 0)
        assert not policy.abandoned

    def test_caps_are_exposed_for_updates(self):
        policy = AdaptivePolicy(mfcs_size_cap=7, mfcs_work_cap=99)
        assert policy.update_size_cap == 7
        assert policy.update_work_cap == 99


class TestTriggers:
    def test_size_cap_abandons(self):
        policy = AdaptivePolicy(mfcs_size_cap=5)
        assert not policy.keep_mfcs(2, 6, 1000, 0)
        assert policy.abandoned

    def test_ratio_cap_abandons(self):
        policy = AdaptivePolicy(mfcs_ratio_cap=2.0)
        assert not policy.keep_mfcs(2, 50, 10, 0)
        assert policy.abandoned

    def test_futility_counts_consecutive_empty_passes(self):
        policy = AdaptivePolicy(futile_passes=2, min_passes=1)
        assert policy.keep_mfcs(1, 5, 100, 0)   # streak 1
        assert not policy.keep_mfcs(2, 5, 100, 0)  # streak 2 -> abandon

    def test_futility_resets_on_discovery(self):
        policy = AdaptivePolicy(futile_passes=2, min_passes=1)
        assert policy.keep_mfcs(1, 5, 100, 0)
        assert policy.keep_mfcs(2, 5, 100, 3)   # found maximal: reset
        assert policy.keep_mfcs(3, 5, 100, 0)
        assert not policy.keep_mfcs(4, 5, 100, 0)

    def test_futility_waits_for_min_passes(self):
        policy = AdaptivePolicy(futile_passes=1, min_passes=4)
        for pass_number in range(1, 4):
            assert policy.keep_mfcs(pass_number, 5, 100, 0)
        assert not policy.keep_mfcs(4, 5, 100, 0)

    def test_futility_disabled_with_zero(self):
        policy = AdaptivePolicy(futile_passes=0)
        for pass_number in range(1, 30):
            assert policy.keep_mfcs(pass_number, 5, 100, 0)

    def test_abandonment_is_permanent(self):
        policy = AdaptivePolicy(mfcs_size_cap=1)
        assert not policy.keep_mfcs(1, 5, 100, 0)
        # even a pass that would look fine stays abandoned
        assert not policy.keep_mfcs(2, 1, 100, 5)

    def test_forced_abandon(self):
        policy = AdaptivePolicy()
        policy.abandon()
        assert policy.abandoned
        assert not policy.keep_mfcs(1, 1, 100, 5)


class TestLengthGuard:
    def test_long_maximal_blocks_all_triggers(self):
        policy = AdaptivePolicy(
            mfcs_size_cap=1, mfcs_ratio_cap=0.001, futile_passes=1,
            min_passes=1, abandon_length_cap=10,
        )
        # every trigger condition holds, but a 15-item maximal was found
        assert policy.keep_mfcs(5, 1000, 1, 0, longest_maximal=15)
        assert not policy.abandoned

    def test_short_maximal_does_not_block(self):
        policy = AdaptivePolicy(mfcs_size_cap=1, abandon_length_cap=10)
        assert not policy.keep_mfcs(5, 1000, 1, 0, longest_maximal=3)

    def test_length_guard_resets_futility_streak(self):
        policy = AdaptivePolicy(futile_passes=2, min_passes=1,
                                abandon_length_cap=5)
        assert policy.keep_mfcs(1, 5, 100, 0)            # streak 1
        assert policy.keep_mfcs(2, 5, 100, 0, longest_maximal=9)
        assert policy.keep_mfcs(3, 5, 100, 0)            # streak restarts
        assert not policy.keep_mfcs(4, 5, 100, 0)


class TestValidation:
    def test_rejects_bad_size_cap(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(mfcs_size_cap=0)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(mfcs_ratio_cap=0)

    def test_rejects_bad_pass_thresholds(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(min_passes=0)
        with pytest.raises(ValueError):
            AdaptivePolicy(futile_passes=-1)


class TestFixedPolicies:
    def test_always_maintain_never_gives_up(self):
        policy = AlwaysMaintain()
        for pass_number in range(1, 40):
            assert policy.keep_mfcs(pass_number, 10 ** 6, 0, 0)
        assert policy.update_size_cap is None
        assert policy.update_work_cap is None

    def test_always_maintain_refuses_forced_abandon(self):
        with pytest.raises(AssertionError):
            AlwaysMaintain().abandon()

    def test_never_maintain_starts_abandoned(self):
        policy = NeverMaintain()
        assert policy.abandoned
        assert not policy.keep_mfcs(0, 1, 0, 0)


class TestPassRateEstimator:
    def test_none_until_first_observation(self):
        from repro.core.adaptive import PassRateEstimator

        estimator = PassRateEstimator()
        assert estimator.rate is None
        assert estimator.observe(0, 1.0) is None     # nothing counted
        assert estimator.observe(100, 0.0) is None   # clock too coarse

    def test_first_observation_sets_rate_exactly(self):
        from repro.core.adaptive import PassRateEstimator

        estimator = PassRateEstimator()
        assert estimator.observe(500, 0.5) == 1000.0

    def test_ewma_smooths_subsequent_passes(self):
        from repro.core.adaptive import PassRateEstimator

        estimator = PassRateEstimator(alpha=0.5)
        estimator.observe(1000, 1.0)   # 1000 c/s
        assert estimator.observe(3000, 1.0) == 2000.0  # (1000+3000)/2

    def test_alpha_validation(self):
        from repro.core.adaptive import PassRateEstimator

        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                PassRateEstimator(alpha=bad)

    def test_miner_feeds_engine_note_pass_rate(self):
        # the pincer miner times every engine.count and forwards the
        # smoothed rate through SupportCounter.note_pass_rate
        from repro.core.pincer import PincerSearch
        from repro.db.counting import get_counter
        from repro.db.transaction_db import TransactionDatabase

        rates = []
        engine = get_counter("bitmap")
        engine.note_pass_rate = rates.append
        db = TransactionDatabase([[1, 2, 3], [1, 2], [2, 3]] * 5)
        PincerSearch().mine(db, 0.2, counter=engine)
        assert rates
        assert all(r is None or r > 0.0 for r in rates)
