"""The ``pincer serve`` front-end: protocol, admission, lifecycle."""

import json
import random
import socket
import threading

import pytest

from repro.core.pincer import pincer_search
from repro.core.session import MiningSession
from repro.db.transaction_db import TransactionDatabase
from repro.obs.requestlog import RequestLog
from repro.obs.schema import validate_request_log_file
from repro.serve import MiningServer, request


@pytest.fixture
def db():
    rng = random.Random(42)
    items = list(range(1, 21))
    return TransactionDatabase(
        [rng.sample(items, rng.randint(2, 7)) for _ in range(400)]
    )


@pytest.fixture
def server(db, tmp_path):
    with MiningSession(db, engine="bitmap") as session:
        srv = MiningServer(session, str(tmp_path / "pincer.sock")).start()
        try:
            yield srv
        finally:
            srv.close()


class TestProtocol:
    def test_ping(self, server):
        assert request(server.socket_path, {"op": "ping"})["ok"]

    def test_mine_matches_cold_search(self, server, db):
        reply = request(
            server.socket_path, {"op": "mine", "min_support": 5.0}
        )
        assert reply["ok"]
        cold = pincer_search(db, 0.05)
        assert sorted(tuple(m) for m in reply["mfs"]) == sorted(cold.mfs)
        assert reply["min_support_count"] == cold.min_support_count
        assert len(reply["supports"]) == len(reply["mfs"])

    def test_repeat_mine_is_warm_and_hits_cache(self, server):
        first = request(
            server.socket_path, {"op": "mine", "min_support": 5.0}
        )
        second = request(
            server.socket_path, {"op": "mine", "min_support": 5.0}
        )
        assert second["mfs"] == first["mfs"]
        assert second["warm"]
        assert second["cache"]["hits"] > first["cache"]["hits"]

    def test_rules(self, server):
        reply = request(
            server.socket_path,
            {"op": "rules", "min_support": 5.0, "min_confidence": 50},
        )
        assert reply["ok"]
        assert reply["count"] == len(reply["rules"])
        for rule in reply["rules"]:
            assert rule["confidence"] >= 0.5

    def test_stats(self, server):
        request(server.socket_path, {"op": "mine", "min_support": 5.0})
        reply = request(server.socket_path, {"op": "stats"})
        assert reply["ok"]
        assert reply["session"]["queries"] >= 1
        assert reply["served"] >= 1

    def test_malformed_json_gets_error_not_disconnect(self, server):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(server.socket_path)
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile().readline())
            assert not reply["ok"]
            assert "malformed" in reply["error"]
            # the connection survives a bad line
            sock.sendall(b'{"op": "ping"}\n')
            assert json.loads(sock.makefile().readline())["ok"]

    def test_bad_requests_are_errors(self, server):
        assert not request(server.socket_path, {"op": "explode"})["ok"]
        assert not request(
            server.socket_path, {"op": "mine", "min_support": 0}
        )["ok"]
        assert not request(
            server.socket_path, {"op": "mine", "min_support": 250.0}
        )["ok"]
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(server.socket_path)
            sock.sendall(b'["a", "list"]\n')
            reply = json.loads(sock.makefile().readline())
            assert not reply["ok"]


class TestConcurrency:
    def test_concurrent_queries_all_exact(self, server, db):
        supports = [8.0, 5.0, 3.0]
        cold = {s: sorted(pincer_search(db, s / 100.0).mfs) for s in supports}
        replies = [None] * 9
        errors = []

        def fire(slot, support):
            try:
                replies[slot] = request(
                    server.socket_path,
                    {"op": "mine", "min_support": support},
                    timeout=120.0,
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(i, supports[i % 3]))
            for i in range(9)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        assert not errors
        for i, reply in enumerate(replies):
            assert reply is not None and reply["ok"]
            got = sorted(tuple(m) for m in reply["mfs"])
            assert got == cold[supports[i % 3]]
        # repeated thresholds must have hit the cache
        stats = request(server.socket_path, {"op": "stats"})
        assert stats["session"]["cache"]["hits"] > 0


class TestAdmission:
    def test_busy_rejection_when_budget_exceeded(self, db, tmp_path):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(
                session, str(tmp_path / "tiny.sock"), cost_budget=1
            ).start()
            try:
                # hold the first query in flight so the second provably
                # arrives while the budget is spoken for
                entered = threading.Event()
                release = threading.Event()
                original_mine = session.mine

                def held_mine(*args, **kwargs):
                    entered.set()
                    assert release.wait(timeout=60.0)
                    return original_mine(*args, **kwargs)

                session.mine = held_mine
                first = {}

                def fire():
                    first.update(
                        request(
                            server.socket_path,
                            {"op": "mine", "min_support": 5.0},
                            timeout=120.0,
                        )
                    )

                thread = threading.Thread(target=fire)
                thread.start()
                assert entered.wait(timeout=60.0)
                rejected = request(
                    server.socket_path,
                    {"op": "mine", "min_support": 5.0},
                    timeout=60.0,
                )
                release.set()
                thread.join(timeout=120.0)
                assert first["ok"]  # admitted under the idle rule
                assert not rejected["ok"]
                assert rejected["error"] == "busy"
                assert rejected["retry"]
                assert server.queries_rejected == 1
            finally:
                server.close()

    def test_idle_server_always_admits_expensive_query(self, db, tmp_path):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(
                session, str(tmp_path / "idle.sock"), cost_budget=1
            ).start()
            try:
                reply = request(
                    server.socket_path, {"op": "mine", "min_support": 5.0}
                )
                assert reply["ok"]  # cost >> budget, but nothing in flight
            finally:
                server.close()


class TestLifecycle:
    def test_shutdown_removes_socket_file(self, db, tmp_path):
        socket_path = str(tmp_path / "shut.sock")
        import os

        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(session, socket_path).start()
            assert os.path.exists(socket_path)
            reply = request(socket_path, {"op": "shutdown"})
            assert reply["ok"]
            server._thread.join(timeout=10.0) if server._thread else None
            # close() runs on a helper thread; wait for the file to go
            for _ in range(100):
                if not os.path.exists(socket_path):
                    break
                threading.Event().wait(0.05)
            assert not os.path.exists(socket_path)
            # session is borrowed, not owned: still usable after shutdown
            assert session.mine(0.05).mfs is not None

    def test_close_is_idempotent(self, db, tmp_path):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(session, str(tmp_path / "twice.sock"))
            server.start()
            server.close()
            server.close()

    def test_stale_socket_file_is_replaced(self, db, tmp_path):
        socket_path = tmp_path / "stale.sock"
        socket_path.write_text("stale")
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(session, str(socket_path)).start()
            try:
                assert request(str(socket_path), {"op": "ping"})["ok"]
            finally:
                server.close()


class TestQueryPlane:
    def test_replies_carry_request_id_seconds_and_eta(self, server):
        replies = [
            request(server.socket_path, {"op": "mine", "min_support": 5.0}),
            request(server.socket_path, {"op": "mine", "min_support": 5.0}),
            request(
                server.socket_path,
                {"op": "rules", "min_support": 5.0, "min_confidence": 50},
            ),
        ]
        ids = [reply["request_id"] for reply in replies]
        assert len(set(ids)) == 3
        for reply in replies:
            assert reply["ok"]
            assert reply["request_id"].startswith("req-")
            assert reply["seconds"] >= 0
            assert "eta_seconds" in reply
        # the first query counted candidates, so the rate is calibrated
        # and later replies quote a concrete ETA
        assert replies[-1]["eta_seconds"] is not None

    def test_error_replies_carry_request_id(self, server):
        reply = request(
            server.socket_path, {"op": "mine", "min_support": 0}
        )
        assert not reply["ok"]
        assert reply["request_id"].startswith("req-")

    def test_stats_vitals(self, server):
        import os

        request(server.socket_path, {"op": "mine", "min_support": 5.0})
        reply = request(server.socket_path, {"op": "stats"})
        vitals = reply["vitals"]
        assert vitals["pid"] == os.getpid()
        assert vitals["uptime_seconds"] >= 0
        assert vitals["engine"] == "bitmap"
        assert vitals["inflight_queries"] == 0
        assert vitals["cost_budget"] == server.cost_budget
        assert vitals["counting_rate"] is not None
        slo = reply["slo"]
        assert slo["queries"] >= 1
        assert slo["latency"]["p50"] > 0

    def test_metrics_op_is_prometheus_exposition(self, server):
        request(server.socket_path, {"op": "mine", "min_support": 5.0})
        reply = request(server.socket_path, {"op": "metrics"})
        assert reply["ok"]
        assert reply["content_type"].startswith("text/plain")
        exposition = reply["exposition"]
        assert "pincer_serve_queries" in exposition
        assert "pincer_serve_window_latency" in exposition
        for line in exposition.splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            float(value)  # every sample value parses as a number

    def test_rules_busy_rejection_is_counted_and_quotes_eta(
        self, db, tmp_path
    ):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(
                session, str(tmp_path / "rules.sock"), cost_budget=1
            ).start()
            try:
                # calibrate the rate estimator, then hold a mine in
                # flight so the rules query provably arrives busy
                request(
                    server.socket_path,
                    {"op": "mine", "min_support": 5.0},
                    timeout=120.0,
                )
                entered = threading.Event()
                release = threading.Event()
                original_mine = session.mine

                def held_mine(*args, **kwargs):
                    entered.set()
                    assert release.wait(timeout=60.0)
                    return original_mine(*args, **kwargs)

                session.mine = held_mine
                thread = threading.Thread(
                    target=request,
                    args=(
                        server.socket_path,
                        {"op": "mine", "min_support": 3.0},
                    ),
                    kwargs={"timeout": 120.0},
                )
                thread.start()
                assert entered.wait(timeout=60.0)
                etas = []
                for _ in range(3):
                    rejected = request(
                        server.socket_path,
                        {
                            "op": "rules",
                            "min_support": 3.0,
                            "min_confidence": 50,
                        },
                        timeout=60.0,
                    )
                    assert not rejected["ok"]
                    assert rejected["error"] == "busy"
                    assert rejected["retry"]
                    etas.append(rejected["eta_seconds"])
                release.set()
                thread.join(timeout=120.0)
                # the fix this PR makes: rules rejections move the same
                # counter the mine path moves
                assert server.queries_rejected == 3
                # the rate was calibrated before the holdup, so every
                # busy reply quotes a concrete, non-increasing ETA
                assert all(eta is not None for eta in etas)
                assert all(a >= b for a, b in zip(etas, etas[1:]))
            finally:
                server.close()

    def test_rules_success_feeds_latency_instruments(self, server):
        request(
            server.socket_path,
            {"op": "rules", "min_support": 5.0, "min_confidence": 50},
        )
        # the fix this PR makes: rules queries land in serve.seconds
        assert server.metrics.histogram("serve.seconds").count >= 1
        assert server.metrics.counter("serve.queries").value >= 1

    def test_concurrent_queries_log_exactly_one_record_each(
        self, db, tmp_path
    ):
        access = str(tmp_path / "access.jsonl")
        with MiningSession(db, engine="bitmap") as session, \
                RequestLog(access) as log:
            server = MiningServer(
                session, str(tmp_path / "logged.sock"),
                cost_budget=10**9, request_log=log,
            ).start()
            try:
                replies = [None] * 8
                errors = []

                def fire(slot, support):
                    try:
                        replies[slot] = request(
                            server.socket_path,
                            {"op": "mine", "min_support": support},
                            timeout=120.0,
                        )
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [
                    threading.Thread(
                        target=fire, args=(i, [8.0, 5.0][i % 2])
                    )
                    for i in range(8)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=180.0)
                assert not errors
            finally:
                server.close()
        # one well-formed v4 record per query, ids matching the replies
        assert validate_request_log_file(access) == 8
        with open(access) as handle:
            records = [json.loads(line) for line in handle]
        assert sorted(r["id"] for r in records) == sorted(
            reply["request_id"] for reply in replies
        )
        for record in records:
            assert record["ok"] and record["admitted"]
            assert record["op"] == "mine"
            assert record["seconds"] >= 0

    def test_rules_record_validates_without_a_pass_count(
        self, db, tmp_path
    ):
        # rules runners report no pass count; the record must omit the
        # key (schema v4 rejects "passes": null) and still validate
        access = str(tmp_path / "access.jsonl")
        with MiningSession(db, engine="bitmap") as session, \
                RequestLog(access) as log:
            server = MiningServer(
                session, str(tmp_path / "ruleslog.sock"), request_log=log
            ).start()
            try:
                reply = request(
                    server.socket_path,
                    {"op": "rules", "min_support": 5.0,
                     "min_confidence": 50.0},
                )
            finally:
                server.close()
        assert reply["ok"]
        assert validate_request_log_file(access) == 1
        with open(access) as handle:
            record = json.loads(handle.readline())
        assert record["op"] == "rules" and record["ok"]
        assert "passes" not in record

    def test_rejections_and_errors_are_logged_too(self, db, tmp_path):
        access = str(tmp_path / "access.jsonl")
        with MiningSession(db, engine="bitmap") as session, \
                RequestLog(access) as log:
            server = MiningServer(
                session, str(tmp_path / "badlog.sock"), request_log=log
            ).start()
            try:
                bad = request(
                    server.socket_path, {"op": "mine", "min_support": 0}
                )
            finally:
                server.close()
        assert validate_request_log_file(access) == 1
        with open(access) as handle:
            record = json.loads(handle.readline())
        assert record["id"] == bad["request_id"]
        assert not record["ok"] and not record["admitted"]
        assert "min_support" in record["error"]

    def test_request_id_propagates_into_the_trace(self, db, tmp_path):
        from repro.obs import capture, load_trace_events

        trace_path = str(tmp_path / "serve-trace.jsonl")
        obs = capture(trace_path=trace_path, producer="test-serve")
        with MiningSession(db, engine="bitmap", obs=obs) as session:
            server = MiningServer(
                session, str(tmp_path / "traced.sock")
            ).start()
            try:
                first = request(
                    server.socket_path, {"op": "mine", "min_support": 5.0}
                )
                second = request(
                    server.socket_path, {"op": "mine", "min_support": 8.0}
                )
            finally:
                server.close()
        obs.finish()
        events = load_trace_events(trace_path)
        spans = [e for e in events if e.get("type") == "span"]
        assert spans
        by_request = {}
        for span in spans:
            request_id = span.get("attrs", {}).get("request_id")
            assert request_id is not None, span["name"]
            by_request.setdefault(request_id, []).append(span["name"])
        assert set(by_request) == {
            first["request_id"], second["request_id"]
        }
        # the whole run > pass > count subtree carries the id
        assert "run" in by_request[first["request_id"]]
        assert "count" in by_request[first["request_id"]]

    def test_slow_query_ring_snapshots_outliers(self, db, tmp_path):
        access = str(tmp_path / "access.jsonl")
        log = RequestLog(
            access, slow_dir=str(tmp_path / "slow"), slow_min_seconds=0.0
        )
        with MiningSession(db, engine="bitmap") as session, log:
            server = MiningServer(
                session, str(tmp_path / "slow.sock"), request_log=log
            ).start()
            try:
                reply = request(
                    server.socket_path, {"op": "mine", "min_support": 5.0}
                )
            finally:
                server.close()
        # with a zero floor the first query is an outlier by definition
        assert log.slow_recorded == 1
        entries = log.ring.entries()
        assert entries[0]["record"]["id"] == reply["request_id"]

    def test_serve_frame_renders_query_plane(self, server):
        from repro.obs.top import format_serve_frame

        request(server.socket_path, {"op": "mine", "min_support": 5.0})
        stats = request(server.socket_path, {"op": "stats"})
        frame = format_serve_frame(server.socket_path, stats)
        assert server.socket_path in frame
        assert "qps" in frame
        assert "p99" in frame
        unreachable = format_serve_frame(
            "/tmp/nowhere.sock", {"ok": False, "error": "nope"}
        )
        assert "no stats" in unreachable
