"""The ``pincer serve`` front-end: protocol, admission, lifecycle."""

import json
import random
import socket
import threading

import pytest

from repro.core.pincer import pincer_search
from repro.core.session import MiningSession
from repro.db.transaction_db import TransactionDatabase
from repro.serve import MiningServer, request


@pytest.fixture
def db():
    rng = random.Random(42)
    items = list(range(1, 21))
    return TransactionDatabase(
        [rng.sample(items, rng.randint(2, 7)) for _ in range(400)]
    )


@pytest.fixture
def server(db, tmp_path):
    with MiningSession(db, engine="bitmap") as session:
        srv = MiningServer(session, str(tmp_path / "pincer.sock")).start()
        try:
            yield srv
        finally:
            srv.close()


class TestProtocol:
    def test_ping(self, server):
        assert request(server.socket_path, {"op": "ping"})["ok"]

    def test_mine_matches_cold_search(self, server, db):
        reply = request(
            server.socket_path, {"op": "mine", "min_support": 5.0}
        )
        assert reply["ok"]
        cold = pincer_search(db, 0.05)
        assert sorted(tuple(m) for m in reply["mfs"]) == sorted(cold.mfs)
        assert reply["min_support_count"] == cold.min_support_count
        assert len(reply["supports"]) == len(reply["mfs"])

    def test_repeat_mine_is_warm_and_hits_cache(self, server):
        first = request(
            server.socket_path, {"op": "mine", "min_support": 5.0}
        )
        second = request(
            server.socket_path, {"op": "mine", "min_support": 5.0}
        )
        assert second["mfs"] == first["mfs"]
        assert second["warm"]
        assert second["cache"]["hits"] > first["cache"]["hits"]

    def test_rules(self, server):
        reply = request(
            server.socket_path,
            {"op": "rules", "min_support": 5.0, "min_confidence": 50},
        )
        assert reply["ok"]
        assert reply["count"] == len(reply["rules"])
        for rule in reply["rules"]:
            assert rule["confidence"] >= 0.5

    def test_stats(self, server):
        request(server.socket_path, {"op": "mine", "min_support": 5.0})
        reply = request(server.socket_path, {"op": "stats"})
        assert reply["ok"]
        assert reply["session"]["queries"] >= 1
        assert reply["served"] >= 1

    def test_malformed_json_gets_error_not_disconnect(self, server):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(server.socket_path)
            sock.sendall(b"this is not json\n")
            reply = json.loads(sock.makefile().readline())
            assert not reply["ok"]
            assert "malformed" in reply["error"]
            # the connection survives a bad line
            sock.sendall(b'{"op": "ping"}\n')
            assert json.loads(sock.makefile().readline())["ok"]

    def test_bad_requests_are_errors(self, server):
        assert not request(server.socket_path, {"op": "explode"})["ok"]
        assert not request(
            server.socket_path, {"op": "mine", "min_support": 0}
        )["ok"]
        assert not request(
            server.socket_path, {"op": "mine", "min_support": 250.0}
        )["ok"]
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(30.0)
            sock.connect(server.socket_path)
            sock.sendall(b'["a", "list"]\n')
            reply = json.loads(sock.makefile().readline())
            assert not reply["ok"]


class TestConcurrency:
    def test_concurrent_queries_all_exact(self, server, db):
        supports = [8.0, 5.0, 3.0]
        cold = {s: sorted(pincer_search(db, s / 100.0).mfs) for s in supports}
        replies = [None] * 9
        errors = []

        def fire(slot, support):
            try:
                replies[slot] = request(
                    server.socket_path,
                    {"op": "mine", "min_support": support},
                    timeout=120.0,
                )
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=fire, args=(i, supports[i % 3]))
            for i in range(9)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
        assert not errors
        for i, reply in enumerate(replies):
            assert reply is not None and reply["ok"]
            got = sorted(tuple(m) for m in reply["mfs"])
            assert got == cold[supports[i % 3]]
        # repeated thresholds must have hit the cache
        stats = request(server.socket_path, {"op": "stats"})
        assert stats["session"]["cache"]["hits"] > 0


class TestAdmission:
    def test_busy_rejection_when_budget_exceeded(self, db, tmp_path):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(
                session, str(tmp_path / "tiny.sock"), cost_budget=1
            ).start()
            try:
                # hold the first query in flight so the second provably
                # arrives while the budget is spoken for
                entered = threading.Event()
                release = threading.Event()
                original_mine = session.mine

                def held_mine(*args, **kwargs):
                    entered.set()
                    assert release.wait(timeout=60.0)
                    return original_mine(*args, **kwargs)

                session.mine = held_mine
                first = {}

                def fire():
                    first.update(
                        request(
                            server.socket_path,
                            {"op": "mine", "min_support": 5.0},
                            timeout=120.0,
                        )
                    )

                thread = threading.Thread(target=fire)
                thread.start()
                assert entered.wait(timeout=60.0)
                rejected = request(
                    server.socket_path,
                    {"op": "mine", "min_support": 5.0},
                    timeout=60.0,
                )
                release.set()
                thread.join(timeout=120.0)
                assert first["ok"]  # admitted under the idle rule
                assert not rejected["ok"]
                assert rejected["error"] == "busy"
                assert rejected["retry"]
                assert server.queries_rejected == 1
            finally:
                server.close()

    def test_idle_server_always_admits_expensive_query(self, db, tmp_path):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(
                session, str(tmp_path / "idle.sock"), cost_budget=1
            ).start()
            try:
                reply = request(
                    server.socket_path, {"op": "mine", "min_support": 5.0}
                )
                assert reply["ok"]  # cost >> budget, but nothing in flight
            finally:
                server.close()


class TestLifecycle:
    def test_shutdown_removes_socket_file(self, db, tmp_path):
        socket_path = str(tmp_path / "shut.sock")
        import os

        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(session, socket_path).start()
            assert os.path.exists(socket_path)
            reply = request(socket_path, {"op": "shutdown"})
            assert reply["ok"]
            server._thread.join(timeout=10.0) if server._thread else None
            # close() runs on a helper thread; wait for the file to go
            for _ in range(100):
                if not os.path.exists(socket_path):
                    break
                threading.Event().wait(0.05)
            assert not os.path.exists(socket_path)
            # session is borrowed, not owned: still usable after shutdown
            assert session.mine(0.05).mfs is not None

    def test_close_is_idempotent(self, db, tmp_path):
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(session, str(tmp_path / "twice.sock"))
            server.start()
            server.close()
            server.close()

    def test_stale_socket_file_is_replaced(self, db, tmp_path):
        socket_path = tmp_path / "stale.sock"
        socket_path.write_text("stale")
        with MiningSession(db, engine="bitmap") as session:
            server = MiningServer(session, str(socket_path)).start()
            try:
                assert request(str(socket_path), {"op": "ping"})["ok"]
            finally:
                server.close()
