"""Tests for the versioned on-disk snapshot format (``repro.db.snapshot``)."""

import os
import struct

import pytest

from repro.db.counting import get_counter
from repro.db.disk import DiskTransactionDatabase
from repro.db.snapshot import (
    HEADER_SIZE,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SNAPSHOT_VERSION_PARTITIONED,
    SUPPORTED_SNAPSHOT_VERSIONS,
    SnapshotFormatError,
    default_snapshot_path,
    load_snapshot,
    partition_row_starts,
    snapshot_database,
    write_partitioned_snapshot,
    write_snapshot,
)
from repro.db.transaction_db import TransactionDatabase
from repro.db.vertical import HAVE_NUMPY, PackedBitmapIndex

TRANSACTIONS = [[1, 2, 3], [1, 2], [2, 3], [3], [1], [2], [5, 7]] * 11
DB = TransactionDatabase(TRANSACTIONS)
CANDIDATES = [(), (1,), (2,), (1, 2), (2, 3), (1, 2, 3), (5, 7), (9,)]
EXPECTED = get_counter("naive").count(DB, CANDIDATES)


@pytest.fixture
def snap_path(tmp_path):
    return snapshot_database(DB, tmp_path / "db.snap")


class TestRoundTrip:
    def test_header_metadata_survives(self, snap_path):
        snap = load_snapshot(snap_path)
        assert snap.version == SNAPSHOT_VERSION
        assert snap.num_rows == len(DB)
        assert snap.universe == tuple(DB.universe)
        assert snap.num_words == max(1, (len(DB) + 63) // 64)

    def test_int_bitmaps_identical_to_database(self, snap_path):
        assert load_snapshot(snap_path).int_bitmaps() == DB.item_bitmaps()

    def test_index_counts_match_naive(self, snap_path):
        index = load_snapshot(snap_path).index()
        got = dict(zip(CANDIDATES, index.counts(CANDIDATES)))
        assert got == EXPECTED

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs NumPy")
    def test_matrix_write_path_is_byte_identical(self, snap_path, tmp_path):
        # writing from the packed matrix and from int bitmaps must
        # produce the same file: the format has one canonical encoding
        index = PackedBitmapIndex.from_database(DB)
        other = write_snapshot(
            tmp_path / "matrix.snap", DB.universe, len(DB), matrix=index._matrix
        )
        assert other.read_bytes() == snap_path.read_bytes()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs NumPy")
    def test_packed_index_is_zero_copy_view(self, snap_path):
        snap = load_snapshot(snap_path)
        index = snap.packed_index()
        assert index.num_rows == len(DB)
        got = dict(zip(CANDIDATES, index.counts(CANDIDATES)))
        assert got == EXPECTED

    def test_default_path_appends_suffix(self):
        assert default_snapshot_path("data/t10.dat").name == "t10.dat.snap"

    def test_in_memory_database_requires_explicit_path(self):
        with pytest.raises(ValueError):
            snapshot_database(DB)

    def test_write_rejects_ambiguous_sources(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(tmp_path / "x.snap", [1], 1)


class TestFormatValidation:
    def _corrupt(self, path, offset, payload):
        data = bytearray(path.read_bytes())
        data[offset : offset + len(payload)] = payload
        path.write_bytes(bytes(data))

    def test_bad_magic_rejected(self, snap_path):
        self._corrupt(snap_path, 0, b"NOTASNAP")
        with pytest.raises(SnapshotFormatError, match="not a snapshot"):
            load_snapshot(snap_path)

    def test_future_version_rejected(self, snap_path):
        unsupported = max(SUPPORTED_SNAPSHOT_VERSIONS) + 97
        self._corrupt(snap_path, 8, struct.pack("<I", unsupported))
        with pytest.raises(SnapshotFormatError, match="version"):
            load_snapshot(snap_path)

    def test_truncated_header_rejected(self, tmp_path):
        stub = tmp_path / "stub.snap"
        stub.write_bytes(SNAPSHOT_MAGIC + b"\x01")
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(stub)

    def test_truncated_body_rejected(self, snap_path):
        data = snap_path.read_bytes()
        snap_path.write_bytes(data[:-8])
        with pytest.raises(SnapshotFormatError, match="bytes"):
            load_snapshot(snap_path)

    def test_inconsistent_word_count_rejected(self, snap_path):
        self._corrupt(snap_path, 32, struct.pack("<Q", 99))
        with pytest.raises(SnapshotFormatError, match="num_words"):
            load_snapshot(snap_path)

    def test_unsorted_universe_rejected(self, tmp_path):
        path = write_snapshot(tmp_path / "u.snap", [1, 2], 1, bitmaps={1: 1, 2: 1})
        # swap the two universe entries in place
        self._corrupt(path, HEADER_SIZE, struct.pack("<2q", 2, 1))
        with pytest.raises(SnapshotFormatError, match="ascending"):
            load_snapshot(path)

    def test_header_size_is_stable(self):
        # the 40-byte header keeps both arrays 8-byte aligned; changing
        # it is a format break and needs a version bump
        assert HEADER_SIZE == 40


class TestPartitionedFormat:
    """The v2 partitioned layout and its back-compat with v1."""

    @pytest.fixture
    def v2_path(self, tmp_path):
        # 77 rows at 64 rows/partition -> two partitions (64 + 13)
        return write_partitioned_snapshot(
            tmp_path / "db.v2.snap", DB.universe, len(DB), iter(DB),
            partition_rows=64,
        )

    def test_v1_loads_under_partition_aware_reader(self, snap_path):
        # a v1 file surfaces as a single partition spanning every row,
        # so partition-aware consumers need no special case
        snap = load_snapshot(snap_path)
        assert snap.version == SNAPSHOT_VERSION
        assert snap.num_partitions == 1
        (part,) = snap.partitions
        assert (part.row_start, part.num_rows) == (0, len(DB))
        assert part.matrix_offset == snap.matrix_offset
        assert part.int_bitmaps() == DB.item_bitmaps()

    def test_v2_roundtrip_metadata(self, v2_path):
        snap = load_snapshot(v2_path)
        assert snap.version == SNAPSHOT_VERSION_PARTITIONED
        assert snap.num_partitions == 2
        assert snap.num_rows == len(DB)
        assert snap.universe == tuple(DB.universe)
        starts = [p.row_start for p in snap.partitions]
        assert starts == [0, 64]
        assert snap.partitions[0].num_rows == 64
        assert snap.partitions[1].num_rows == len(DB) - 64
        assert all(p.row_start % 64 == 0 for p in snap.partitions)

    def test_v2_bitmaps_identical_to_database(self, v2_path):
        assert load_snapshot(v2_path).int_bitmaps() == DB.item_bitmaps()

    def test_v2_index_counts_match_naive(self, v2_path):
        index = load_snapshot(v2_path).index()
        got = dict(zip(CANDIDATES, index.counts(CANDIDATES)))
        assert got == EXPECTED

    def test_partition_supports_are_additive(self, v2_path):
        # the invariant the out-of-core miner rests on: global support is
        # the sum of per-partition supports
        snap = load_snapshot(v2_path)
        summed = {c: 0 for c in CANDIDATES}
        for part in snap.partitions:
            for cand, count in zip(
                CANDIDATES, part.index().counts(CANDIDATES)
            ):
                summed[cand] += count
        assert summed == EXPECTED

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs NumPy")
    def test_v2_packed_index_matches_v1_matrix(self, snap_path, v2_path):
        v1 = load_snapshot(snap_path).packed_index()
        v2 = load_snapshot(v2_path).packed_index()
        assert v2._matrix.tobytes() == v1._matrix.tobytes()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs NumPy")
    def test_python_writer_is_byte_identical(self, v2_path, tmp_path):
        other = write_partitioned_snapshot(
            tmp_path / "py.v2.snap", DB.universe, len(DB), iter(DB),
            partition_rows=64, force_python=True,
        )
        assert other.read_bytes() == v2_path.read_bytes()

    def test_snapshot_database_partition_kwargs(self, tmp_path):
        path = snapshot_database(DB, tmp_path / "p.snap", num_partitions=2)
        snap = load_snapshot(path)
        assert snap.version == SNAPSHOT_VERSION_PARTITIONED
        assert snap.num_partitions == 2
        assert snap.int_bitmaps() == DB.item_bitmaps()

    def test_single_partition_request_still_writes_v2(self, tmp_path):
        path = snapshot_database(DB, tmp_path / "one.snap", num_partitions=1)
        snap = load_snapshot(path)
        assert snap.version == SNAPSHOT_VERSION_PARTITIONED
        assert snap.num_partitions == 1
        # single-partition v2 still has a contiguous matrix
        assert snap.matrix_offset == snap.partitions[0].matrix_offset

    def test_truncated_partition_directory_rejected(self, v2_path):
        snap = load_snapshot(v2_path)
        directory_start = HEADER_SIZE + 8 * snap.num_items
        # keep the count but cut the entries short
        v2_path.write_bytes(v2_path.read_bytes()[: directory_start + 8 + 16])
        with pytest.raises(
            SnapshotFormatError, match="truncated partition directory"
        ):
            load_snapshot(v2_path)

    def test_short_stream_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="short"):
            write_partitioned_snapshot(
                tmp_path / "short.snap", DB.universe, len(DB) + 5, iter(DB),
                partition_rows=64,
            )
        # failed writes leave no temp droppings behind
        assert [p for p in os.listdir(tmp_path) if ".tmp." in p] == []

    def test_partition_row_starts_are_64_aligned(self):
        starts = partition_row_starts(1000, num_partitions=4)
        assert starts[0] == 0
        assert all(s % 64 == 0 for s in starts)
        assert partition_row_starts(77, partition_rows=10) == [0, 64]
        assert partition_row_starts(0) == [0]
        with pytest.raises(ValueError):
            partition_row_starts(10, num_partitions=2, partition_rows=5)

    def test_mutilated_directory_entry_rejected(self, v2_path):
        snap = load_snapshot(v2_path)
        entry0 = HEADER_SIZE + 8 * snap.num_items + 8
        data = bytearray(v2_path.read_bytes())
        # shift partition 0's start off the required alignment
        data[entry0 : entry0 + 8] = struct.pack("<Q", 1)
        v2_path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError):
            load_snapshot(v2_path)


class TestDiskIntegration:
    @pytest.fixture
    def basket(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text(
            "\n".join(" ".join(str(i) for i in sorted(t)) for t in TRANSACTIONS)
        )
        return path

    def test_snapshot_backs_the_instance(self, basket):
        db = DiskTransactionDatabase(basket)
        written = db.snapshot()
        assert written == default_snapshot_path(basket)
        reads_before = db.file_reads
        assert db.item_bitmaps() == DB.item_bitmaps()
        # bitmaps came from the snapshot, not another basket parse
        assert db.file_reads == reads_before

    def test_from_snapshot_skips_the_basket_parse(self, basket):
        DiskTransactionDatabase(basket).snapshot()
        db = DiskTransactionDatabase.from_snapshot(
            default_snapshot_path(basket)
        )
        assert db.file_reads == 0
        assert len(db) == len(DB)
        assert tuple(db.universe) == tuple(DB.universe)
        assert db.item_bitmaps() == DB.item_bitmaps()
        assert db.file_reads == 0  # still no basket I/O

    def test_from_snapshot_requires_inferable_basket(self, tmp_path):
        path = snapshot_database(DB, tmp_path / "odd-name.bin")
        with pytest.raises(ValueError):
            DiskTransactionDatabase.from_snapshot(path)

    def test_write_is_atomic(self, basket, tmp_path):
        # no .tmp droppings after a successful write
        DiskTransactionDatabase(basket).snapshot()
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert leftovers == []
