"""Tests for the versioned on-disk snapshot format (``repro.db.snapshot``)."""

import os
import struct

import pytest

from repro.db.counting import get_counter
from repro.db.disk import DiskTransactionDatabase
from repro.db.snapshot import (
    HEADER_SIZE,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotFormatError,
    default_snapshot_path,
    load_snapshot,
    snapshot_database,
    write_snapshot,
)
from repro.db.transaction_db import TransactionDatabase
from repro.db.vertical import HAVE_NUMPY, PackedBitmapIndex

TRANSACTIONS = [[1, 2, 3], [1, 2], [2, 3], [3], [1], [2], [5, 7]] * 11
DB = TransactionDatabase(TRANSACTIONS)
CANDIDATES = [(), (1,), (2,), (1, 2), (2, 3), (1, 2, 3), (5, 7), (9,)]
EXPECTED = get_counter("naive").count(DB, CANDIDATES)


@pytest.fixture
def snap_path(tmp_path):
    return snapshot_database(DB, tmp_path / "db.snap")


class TestRoundTrip:
    def test_header_metadata_survives(self, snap_path):
        snap = load_snapshot(snap_path)
        assert snap.version == SNAPSHOT_VERSION
        assert snap.num_rows == len(DB)
        assert snap.universe == tuple(DB.universe)
        assert snap.num_words == max(1, (len(DB) + 63) // 64)

    def test_int_bitmaps_identical_to_database(self, snap_path):
        assert load_snapshot(snap_path).int_bitmaps() == DB.item_bitmaps()

    def test_index_counts_match_naive(self, snap_path):
        index = load_snapshot(snap_path).index()
        got = dict(zip(CANDIDATES, index.counts(CANDIDATES)))
        assert got == EXPECTED

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs NumPy")
    def test_matrix_write_path_is_byte_identical(self, snap_path, tmp_path):
        # writing from the packed matrix and from int bitmaps must
        # produce the same file: the format has one canonical encoding
        index = PackedBitmapIndex.from_database(DB)
        other = write_snapshot(
            tmp_path / "matrix.snap", DB.universe, len(DB), matrix=index._matrix
        )
        assert other.read_bytes() == snap_path.read_bytes()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs NumPy")
    def test_packed_index_is_zero_copy_view(self, snap_path):
        snap = load_snapshot(snap_path)
        index = snap.packed_index()
        assert index.num_rows == len(DB)
        got = dict(zip(CANDIDATES, index.counts(CANDIDATES)))
        assert got == EXPECTED

    def test_default_path_appends_suffix(self):
        assert default_snapshot_path("data/t10.dat").name == "t10.dat.snap"

    def test_in_memory_database_requires_explicit_path(self):
        with pytest.raises(ValueError):
            snapshot_database(DB)

    def test_write_rejects_ambiguous_sources(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(tmp_path / "x.snap", [1], 1)


class TestFormatValidation:
    def _corrupt(self, path, offset, payload):
        data = bytearray(path.read_bytes())
        data[offset : offset + len(payload)] = payload
        path.write_bytes(bytes(data))

    def test_bad_magic_rejected(self, snap_path):
        self._corrupt(snap_path, 0, b"NOTASNAP")
        with pytest.raises(SnapshotFormatError, match="not a snapshot"):
            load_snapshot(snap_path)

    def test_future_version_rejected(self, snap_path):
        self._corrupt(snap_path, 8, struct.pack("<I", SNAPSHOT_VERSION + 1))
        with pytest.raises(SnapshotFormatError, match="version"):
            load_snapshot(snap_path)

    def test_truncated_header_rejected(self, tmp_path):
        stub = tmp_path / "stub.snap"
        stub.write_bytes(SNAPSHOT_MAGIC + b"\x01")
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(stub)

    def test_truncated_body_rejected(self, snap_path):
        data = snap_path.read_bytes()
        snap_path.write_bytes(data[:-8])
        with pytest.raises(SnapshotFormatError, match="bytes"):
            load_snapshot(snap_path)

    def test_inconsistent_word_count_rejected(self, snap_path):
        self._corrupt(snap_path, 32, struct.pack("<Q", 99))
        with pytest.raises(SnapshotFormatError, match="num_words"):
            load_snapshot(snap_path)

    def test_unsorted_universe_rejected(self, tmp_path):
        path = write_snapshot(tmp_path / "u.snap", [1, 2], 1, bitmaps={1: 1, 2: 1})
        # swap the two universe entries in place
        self._corrupt(path, HEADER_SIZE, struct.pack("<2q", 2, 1))
        with pytest.raises(SnapshotFormatError, match="ascending"):
            load_snapshot(path)

    def test_header_size_is_stable(self):
        # the 40-byte header keeps both arrays 8-byte aligned; changing
        # it is a format break and needs a version bump
        assert HEADER_SIZE == 40


class TestDiskIntegration:
    @pytest.fixture
    def basket(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text(
            "\n".join(" ".join(str(i) for i in sorted(t)) for t in TRANSACTIONS)
        )
        return path

    def test_snapshot_backs_the_instance(self, basket):
        db = DiskTransactionDatabase(basket)
        written = db.snapshot()
        assert written == default_snapshot_path(basket)
        reads_before = db.file_reads
        assert db.item_bitmaps() == DB.item_bitmaps()
        # bitmaps came from the snapshot, not another basket parse
        assert db.file_reads == reads_before

    def test_from_snapshot_skips_the_basket_parse(self, basket):
        DiskTransactionDatabase(basket).snapshot()
        db = DiskTransactionDatabase.from_snapshot(
            default_snapshot_path(basket)
        )
        assert db.file_reads == 0
        assert len(db) == len(DB)
        assert tuple(db.universe) == tuple(DB.universe)
        assert db.item_bitmaps() == DB.item_bitmaps()
        assert db.file_reads == 0  # still no basket I/O

    def test_from_snapshot_requires_inferable_basket(self, tmp_path):
        path = snapshot_database(DB, tmp_path / "odd-name.bin")
        with pytest.raises(ValueError):
            DiskTransactionDatabase.from_snapshot(path)

    def test_write_is_atomic(self, basket, tmp_path):
        # no .tmp droppings after a successful write
        DiskTransactionDatabase(basket).snapshot()
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp." in p]
        assert leftovers == []
