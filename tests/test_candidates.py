"""Unit tests for candidate generation (repro.core.candidates)."""

import pytest

from repro.core.candidates import (
    apriori_join,
    apriori_prune,
    first_level_candidates,
    generate_candidates,
    pincer_prune,
    recovery,
)
from repro.core.cover import CoverIndex


class TestJoin:
    def test_join_pairs_sharing_prefix(self):
        assert apriori_join([(1, 2), (1, 3), (1, 4)]) == {
            (1, 2, 3), (1, 2, 4), (1, 3, 4),
        }

    def test_join_requires_shared_prefix(self):
        assert apriori_join([(1, 2), (2, 3)]) == set()

    def test_join_of_singletons_gives_all_pairs(self):
        assert apriori_join([(1,), (2,), (3,)]) == {(1, 2), (1, 3), (2, 3)}

    def test_join_empty_input(self):
        assert apriori_join([]) == set()

    def test_join_single_itemset(self):
        assert apriori_join([(1, 2)]) == set()

    def test_join_rejects_mixed_lengths(self):
        with pytest.raises(ValueError):
            apriori_join([(1,), (1, 2)])

    def test_join_accepts_unsorted_collections(self):
        # the function sorts internally; input order must not matter
        assert apriori_join([(1, 3), (1, 2)]) == {(1, 2, 3)}


class TestPrune:
    def test_prune_keeps_candidate_with_all_subsets_frequent(self):
        kept = apriori_prune({(1, 2, 3)}, {(1, 2), (1, 3), (2, 3)})
        assert kept == {(1, 2, 3)}

    def test_prune_drops_candidate_with_missing_subset(self):
        assert apriori_prune({(1, 2, 3)}, {(1, 2), (1, 3)}) == set()

    def test_prune_empty_candidates(self):
        assert apriori_prune(set(), {(1, 2)}) == set()


class TestRecovery:
    def test_recovery_for_k1(self):
        # pass 1: every 1-itemset in L_1 pairs with every item of X
        recovered = recovery([(9,)], [(1, 2, 3)], 1)
        assert recovered == {(1, 9), (2, 9), (3, 9)}

    def test_recovery_skips_short_mfs_members(self):
        # members of length <= k cannot contribute partners
        assert recovery([(1, 2)], [(1, 2)], 2) == set()

    def test_recovery_prefix_not_in_member(self):
        assert recovery([(8, 9, 10)], [(1, 2, 3, 4, 5)], 3) == set()

    def test_recovery_item_between_prefix_and_last(self):
        # X items after the prefix that sort BELOW Y's last item
        recovered = recovery([(1, 2, 9)], [(1, 2, 3, 4)], 3)
        assert recovered == {(1, 2, 3, 9), (1, 2, 4, 9)}

    def test_recovery_rejects_wrong_level_inputs(self):
        with pytest.raises(ValueError):
            recovery([(1, 2)], [(1, 2, 3)], 3)

    def test_recovery_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            recovery([], [(1,)], 0)

    def test_recovery_with_cover_index_input(self):
        cover = CoverIndex([(1, 2, 3, 4, 5)])
        assert recovery([(2, 4, 6), (2, 5, 6), (4, 5, 6)], cover, 3) == {
            (2, 4, 5, 6)
        }


class TestPincerPrune:
    def test_drops_subsets_of_mfs(self):
        kept = pincer_prune({(1, 2, 3)}, {(1, 2), (1, 3), (2, 3)}, [(1, 2, 3, 4)])
        assert kept == set()

    def test_subset_known_frequent_via_mfs(self):
        # (1,2) not in L_2 but under the MFS member -> candidate survives
        kept = pincer_prune({(1, 2, 9)}, {(1, 9), (2, 9)}, [(1, 2, 3)])
        assert kept == {(1, 2, 9)}

    def test_subset_unknown_drops_candidate(self):
        kept = pincer_prune({(1, 2, 9)}, {(1, 9)}, [(1, 3)])
        assert kept == set()

    def test_no_mfs_behaves_like_apriori_prune(self):
        candidates = {(1, 2, 3), (2, 3, 4)}
        level = {(1, 2), (1, 3), (2, 3)}
        assert pincer_prune(candidates, level, []) == apriori_prune(
            candidates, level
        )


class TestGenerateCandidates:
    def test_without_mfs_equals_apriori_gen(self):
        level = [(1, 2), (1, 3), (2, 3), (2, 4)]
        expected = apriori_prune(apriori_join(level), set(level))
        assert generate_candidates(level, [], 2) == expected

    def test_with_mfs_excludes_covered_candidates(self):
        level = [(1, 2), (1, 3), (2, 3)]
        assert generate_candidates(level, [(1, 2, 3, 4)], 2) == set()

    def test_empty_level_with_mfs(self):
        assert generate_candidates([], [(1, 2, 3)], 3) == set()


class TestFirstLevel:
    def test_first_level_candidates(self):
        assert first_level_candidates([3, 1, 1]) == [(1,), (3,)]

    def test_first_level_of_empty_universe(self):
        assert first_level_candidates([]) == []
