"""End-to-end integration tests: generator -> miners -> rules -> borders.

These run the whole pipeline on miniature versions of the paper's
benchmark workloads (both distribution regimes) and cross-check every
component against every other.
"""

import pytest

from repro import (
    AdaptivePolicy,
    Apriori,
    PincerSearch,
    QuestConfig,
    QuestGenerator,
    TransactionDatabase,
    top_down,
)
from repro.algorithms.brute_force import brute_force_frequents
from repro.borders.borders import negative_border, positive_border
from repro.core.lattice import downward_closure
from repro.db import io
from repro.db.counting import get_counter
from repro.rules.from_mfs import rules_from_mfs
from repro.rules.generation import generate_rules


def concentrated_db():
    config = QuestConfig(
        num_transactions=600, avg_transaction_size=8, avg_pattern_size=5,
        num_patterns=8, num_items=40, seed=13,
    )
    return QuestGenerator(config).generate()


def scattered_db():
    config = QuestConfig(
        num_transactions=600, avg_transaction_size=6, avg_pattern_size=2,
        num_patterns=150, num_items=60, seed=14,
    )
    return QuestGenerator(config).generate()


@pytest.fixture(scope="module", params=["concentrated", "scattered"])
def workload(request):
    if request.param == "concentrated":
        return concentrated_db(), 0.05
    return scattered_db(), 0.02


class TestMinerAgreement:
    def test_all_miners_same_mfs(self, workload):
        db, minsup = workload
        pincer = PincerSearch().mine(db, minsup)
        pure = PincerSearch(adaptive=False).mine(db, minsup)
        baseline = Apriori().mine(db, minsup)
        assert pincer.mfs == pure.mfs == baseline.mfs

    def test_engines_interchangeable_end_to_end(self, workload):
        db, minsup = workload
        reference = PincerSearch(engine="bitmap").mine(db, minsup).mfs
        for engine in ("naive", "hashtree", "trie"):
            assert PincerSearch(engine=engine).mine(db, minsup).mfs == reference

    def test_hostile_adaptivity_end_to_end(self, workload):
        db, minsup = workload
        reference = Apriori().mine(db, minsup).mfs
        policy = AdaptivePolicy(
            mfcs_work_cap=500, futile_passes=1, min_passes=1,
            abandon_length_cap=3,
        )
        assert PincerSearch(policy=policy).mine(db, minsup).mfs == reference


class TestFrequencySemantics:
    def test_mfs_closure_equals_apriori_frequents(self, workload):
        db, minsup = workload
        pincer = PincerSearch().mine(db, minsup)
        apriori_frequents = set(Apriori().frequent_itemsets(db, minsup))
        assert downward_closure(pincer.mfs) == apriori_frequents

    def test_borders_partition_the_lattice_boundary(self, workload):
        db, minsup = workload
        result = PincerSearch().mine(db, minsup)
        assert positive_border(result.frequent_itemsets()) == set(result.mfs)
        border = negative_border(result.mfs, db.occurring_items())
        for itemset_ in border:
            assert not result.is_frequent(itemset_)


class TestRulesEndToEnd:
    def test_mfs_rules_are_confident_and_frequent(self, workload):
        db, minsup = workload
        result = PincerSearch().mine(db, minsup)
        rules = rules_from_mfs(db, result, min_confidence=0.8, depth=2)
        for rule in rules:
            assert rule.confidence >= 0.8
            assert result.is_frequent(rule.itemset)
            direct = db.support_count(rule.itemset) / len(db)
            assert rule.support == pytest.approx(direct)

    def test_rule_generation_consistent_with_apriori_supports(self, workload):
        db, minsup = workload
        supports = Apriori().frequent_itemsets(db, minsup)
        rules = generate_rules(
            supports, len(db), 0.9,
            min_support_count=db.absolute_support(minsup),
        )
        for rule in rules:
            antecedent_support = supports[rule.antecedent]
            assert rule.confidence == pytest.approx(
                supports[rule.itemset] / antecedent_support
            )


class TestPersistenceRoundTrip:
    def test_save_mine_load_mine(self, tmp_path, workload):
        db, minsup = workload
        before = PincerSearch().mine(db, minsup).mfs
        path = tmp_path / "workload.dat"
        io.save(db, path)
        reloaded = io.load(path)
        after = PincerSearch().mine(reloaded, minsup).mfs
        assert before == after


class TestStatsConsistency:
    def test_counter_and_stats_agree_across_miners(self, workload):
        db, minsup = workload
        for miner in (PincerSearch(), PincerSearch(adaptive=False), Apriori()):
            counter = get_counter("bitmap")
            result = miner.mine(db, minsup, counter=counter)
            assert result.stats.num_passes == counter.passes
            assert result.stats.records_read == counter.records_read
            counted = sum(
                stats.total_candidates for stats in result.stats.passes
            )
            assert counted == counter.itemsets_counted

    def test_pincer_counts_no_more_than_apriori_on_concentrated(self):
        db = concentrated_db()
        pincer = PincerSearch(adaptive=False).mine(db, 0.05)
        baseline = Apriori().mine(db, 0.05)
        assert (
            pincer.stats.total_candidates
            <= baseline.stats.total_candidates + len(db.universe)
        )


class TestTopDownOnSmallUniverse:
    def test_topdown_agrees_on_projected_database(self):
        # project the concentrated workload onto its 12 hottest items so
        # the top-down frontier stays tractable
        db = concentrated_db()
        hot = [
            item for item, _ in sorted(
                db.item_support_counts().items(),
                key=lambda pair: -pair[1],
            )[:12]
        ]
        projected = db.restricted_to(hot)
        minsup = 0.05
        assert set(top_down(projected, minsup).mfs) == set(
            PincerSearch().mine(projected, minsup).mfs
        )
