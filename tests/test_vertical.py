"""Unit tests for the packed vertical-bitmap index (``repro.db.vertical``)."""

import time

import pytest

from repro.db.counting import CountingDeadline, get_counter
from repro.db.transaction_db import TransactionDatabase
from repro.db.vertical import (
    HAVE_NUMPY,
    IntBitmapIndex,
    LruPrefixCache,
    PackedCounter,
    PrefixIntersector,
    build_index,
    popcount,
)

if HAVE_NUMPY:
    from repro.db.vertical import PackedBitmapIndex

TRANSACTIONS = [[1, 2, 3], [1, 2], [2, 3], [3], []]
GROUND_TRUTH = {
    (): 5,
    (1,): 2,
    (2,): 3,
    (3,): 3,
    (1, 2): 2,
    (1, 3): 1,
    (2, 3): 2,
    (1, 2, 3): 1,
    (9,): 0,
    (1, 9): 0,
}


def both_indexes():
    indexes = [IntBitmapIndex.from_transactions(TRANSACTIONS)]
    if HAVE_NUMPY:
        indexes.append(PackedBitmapIndex.from_transactions(TRANSACTIONS))
    return indexes


@pytest.mark.parametrize("index", both_indexes(), ids=lambda i: type(i).__name__)
class TestIndexCounts:
    def test_ground_truth(self, index):
        candidates = list(GROUND_TRUTH)
        assert index.counts(candidates) == [GROUND_TRUTH[c] for c in candidates]

    def test_num_rows(self, index):
        assert index.num_rows == len(TRANSACTIONS)

    def test_tiny_chunks_agree(self, index):
        candidates = list(GROUND_TRUTH)
        expected = index.counts(candidates)
        assert index.counts(candidates, chunk_size=1) == expected
        assert index.counts(candidates, chunk_size=3) == expected

    def test_empty_candidate_list(self, index):
        assert index.counts([]) == []

    def test_deadline_check_is_invoked(self, index):
        calls = []
        index.counts(list(GROUND_TRUTH), deadline_check=lambda: calls.append(1))
        assert calls


@pytest.mark.skipif(not HAVE_NUMPY, reason="requires NumPy")
class TestPackedIndex:
    def test_round_trip_matches_int_bitmaps(self):
        packed = PackedBitmapIndex.from_transactions(TRANSACTIONS)
        plain = IntBitmapIndex.from_transactions(TRANSACTIONS)
        candidates = list(GROUND_TRUTH)
        assert packed.counts(candidates) == plain.counts(candidates)

    def test_word_boundaries(self):
        # 64/65 rows straddle the packing word boundary
        for rows in (1, 63, 64, 65, 130):
            transactions = [[1] if t % 2 == 0 else [2] for t in range(rows)]
            index = PackedBitmapIndex.from_transactions(transactions)
            assert index.num_words == max(1, (rows + 63) // 64)
            assert index.counts([(1,), (2,), (1, 2), ()]) == [
                (rows + 1) // 2,
                rows // 2,
                0,
                rows,
            ]

    def test_from_database_reuses_item_bitmaps(self):
        db = TransactionDatabase(TRANSACTIONS)
        index = PackedBitmapIndex.from_database(db)
        assert index.counts([(2, 3)]) == [2]

    def test_long_candidate_from_mfcs(self):
        # pass-1 MFCS candidates can span the whole universe
        universe = list(range(200))
        index = PackedBitmapIndex.from_transactions(
            [universe, universe[:50]], universe
        )
        assert index.counts([tuple(universe)]) == [1]

    def test_shared_prefix_path_matches_generic(self):
        # >=256 candidates of length 3 routes through the levelwise
        # prefix-dedup path; verify against the naive engine
        transactions = [[t % 7, t % 5 + 10, t % 3 + 20] for t in range(100)]
        db = TransactionDatabase(transactions)
        candidates = sorted(
            {
                (a, b + 10, c + 20)
                for a in range(7)
                for b in range(5)
                for c in range(3)
            }
        ) * 2
        expected = get_counter("naive").count(db, candidates)
        index = PackedBitmapIndex.from_database(db)
        actual = dict(zip(candidates, index.counts(candidates)))
        assert actual == expected

    def test_non_table_items_fall_back_to_dict_mapping(self):
        # huge item ids exceed MAX_TABLE_ITEM: the O(1) lookup table is
        # skipped but counting still works
        huge = PackedBitmapIndex.MAX_TABLE_ITEM + 5
        index = PackedBitmapIndex.from_transactions([[1, huge], [huge]])
        assert index._row_table is None
        assert index.counts([(1,), (huge,), (1, huge)]) == [1, 2, 1]


class TestPrefixIntersector:
    def lookup(self, item):
        return {1: 0b0111, 2: 0b0011, 3: 0b0101}.get(item)

    def test_intersections_and_reuse(self):
        cache = PrefixIntersector(self.lookup, lambda a, b: a & b, 0b1111)
        assert cache.intersection((1, 2)) == 0b0011
        assert cache.intersection((1, 2, 3)) == 0b0001
        # (1, 2) was reused from the stack; only item 3 was combined anew
        assert cache.reused == 2
        assert cache.intersections == 3

    def test_unknown_item_poisons_candidate_only(self):
        cache = PrefixIntersector(self.lookup, lambda a, b: a & b, 0b1111)
        assert cache.intersection((1, 9)) is None
        assert cache.intersection((2,)) == 0b0011

    def test_empty_candidate_is_top(self):
        cache = PrefixIntersector(self.lookup, lambda a, b: a & b, 0b1111)
        assert cache.intersection(()) == 0b1111


class TestLruPrefixCache:
    def lookup(self, item):
        return {1: 0b0111, 2: 0b0011, 3: 0b0101, 4: 0b1001}.get(item)

    def make(self, capacity=4096):
        return LruPrefixCache(
            self.lookup, lambda a, b: a & b, 0b1111,
            capacity_per_level=capacity,
        )

    def test_results_match_direct_intersection(self):
        cache = self.make()
        assert cache.intersection((1, 2)) == 0b0011
        assert cache.intersection((1, 2, 3)) == 0b0001
        assert cache.intersection((1, 9)) is None
        assert cache.intersection(()) == 0b1111

    def test_cache_persists_across_batches(self):
        cache = self.make()
        cache.intersection((1, 2))
        hits_before = cache.hits
        # a later batch reuses the stored (1, 2) prefix: two hits
        assert cache.intersection((1, 2, 4)) == 0b0001
        assert cache.hits == hits_before + 2
        assert cache.misses == 3  # items 1, 2, 4 combined exactly once

    def test_eviction_bounds_each_level(self):
        cache = self.make(capacity=2)
        for prefix in ((1, 2), (1, 3), (1, 4)):
            cache.intersection(prefix)
        assert cache.evictions == 1
        # level 1 holds only (1,); level 2 holds the 2 most recent
        assert cache.size == 3
        # the evicted (1, 2) is recomputed: misses, not hits
        misses_before = cache.misses
        cache.intersection((1, 2))
        assert cache.misses == misses_before + 1

    def test_lru_order_refreshes_on_hit(self):
        cache = self.make(capacity=2)
        cache.intersection((1, 2))
        cache.intersection((1, 3))
        cache.intersection((1, 2))  # refresh (1, 2)
        cache.intersection((1, 4))  # evicts (1, 3), not (1, 2)
        hits_before = cache.hits
        cache.intersection((1, 2))
        assert cache.hits == hits_before + 2

    def test_cached_none_is_not_a_miss_sentinel_conflict(self):
        cache = self.make()
        assert cache.intersection((9,)) is None
        misses_before = cache.misses
        assert cache.intersection((9,)) is None  # served from cache
        assert cache.misses == misses_before

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            self.make(capacity=0)

    def test_clear(self):
        cache = self.make()
        cache.intersection((1, 2))
        cache.clear()
        assert cache.size == 0


class TestBuildIndex:
    def test_force_python(self):
        index = build_index(TRANSACTIONS, force_python=True)
        assert isinstance(index, IntBitmapIndex)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="requires NumPy")
    def test_prefers_numpy(self):
        index = build_index(TRANSACTIONS)
        assert isinstance(index, PackedBitmapIndex)


class TestPackedCounter:
    def test_index_cached_per_database(self):
        counter = PackedCounter()
        db = TransactionDatabase(TRANSACTIONS)
        counter.count(db, [(1,)])
        first = counter._index
        counter.count(db, [(2,)])
        assert counter._index is first
        other = TransactionDatabase([[5]])
        counter.count(other, [(5,)])
        assert counter._index is not first

    def test_force_python_counter_matches(self):
        db = TransactionDatabase(TRANSACTIONS)
        candidates = list(GROUND_TRUTH)
        assert (
            PackedCounter(force_python=True).count(db, candidates)
            == GROUND_TRUTH
        )

    def test_expired_deadline_aborts(self):
        counter = PackedCounter()
        counter.deadline = time.perf_counter() - 1.0
        with pytest.raises(CountingDeadline):
            counter.count(TransactionDatabase(TRANSACTIONS), [(1,)])


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount((1 << 200) - 1) == 200


@pytest.mark.skipif(not HAVE_NUMPY, reason="requires NumPy")
class TestFusedTiledKernel:
    """Cache-blocked fused AND+popcount vs the reference index.

    The fused path only engages on wide matrices (``num_words >=
    FUSED_MIN_WORDS``), so these tests lower the threshold on one
    *instance* and shrink ``TILE_WORDS`` below ``num_words`` to force
    multiple tiles — including a ragged final tile — then compare against
    ``IntBitmapIndex`` ground truth.
    """

    ROWS = 300  # 5 words: tile=3 gives one full tile + a ragged one

    def _db(self):
        transactions = [
            sorted({t % 7, t % 11 + 10, t % 3 + 30, (t * 13) % 5 + 40})
            for t in range(self.ROWS)
        ]
        return TransactionDatabase(transactions)

    def _fused_index(self, db):
        index = PackedBitmapIndex.from_database(db)
        assert index.num_words == (self.ROWS + 63) // 64
        index.FUSED_MIN_WORDS = 1
        index.TILE_WORDS = 3
        return index

    def test_matches_reference_without_prefix_plan(self):
        # a short candidate list stays below the plan threshold (256),
        # exercising the in-place column-AND branch of the fused loop
        db = self._db()
        index = self._fused_index(db)
        candidates = [
            (),
            (0,),
            (0, 10),
            (0, 10, 30),
            (1, 12, 31, 42),
            (99,),
            (0, 99),
        ]
        expected = IntBitmapIndex.from_database(db).counts(candidates)
        assert index.counts(candidates) == expected

    def test_matches_reference_with_prefix_plan(self):
        # >=256 same-length candidates route through the hoisted prefix
        # plan, replayed per word tile
        db = self._db()
        index = self._fused_index(db)
        candidates = sorted(
            {
                (a, b + 10, c + 30)
                for a in range(7)
                for b in range(11)
                for c in range(3)
            }
        ) * 2
        assert len(candidates) >= 256
        expected = IntBitmapIndex.from_database(db).counts(candidates)
        assert index.counts(candidates) == expected

    def test_prefix_accounting_still_reported(self):
        db = self._db()
        index = self._fused_index(db)
        candidates = sorted(
            {(a, b + 10, 30) for a in range(7) for b in range(11)}
        ) * 4
        index.counts(candidates)
        assert index.prefix_hits > 0
        assert index.prefix_misses > 0

    def test_tile_larger_than_matrix_is_one_tile(self):
        db = self._db()
        index = self._fused_index(db)
        index.TILE_WORDS = 10 ** 6
        candidates = [(0,), (0, 10), (1, 12, 31)]
        expected = IntBitmapIndex.from_database(db).counts(candidates)
        assert index.counts(candidates) == expected
