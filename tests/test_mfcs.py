"""Unit tests for the MFCS structure and MFCS-gen (repro.core.mfcs)."""

import random

import pytest

from repro.core.itemset import is_subset
from repro.core.lattice import is_antichain
from repro.core.mfcs import MFCS


class TestConstruction:
    def test_for_universe(self):
        assert MFCS.for_universe([3, 1, 2]).elements == {(1, 2, 3)}

    def test_for_empty_universe(self):
        mfcs = MFCS.for_universe([])
        assert len(mfcs) == 0
        assert not mfcs

    def test_constructor_keeps_only_maximal_members(self):
        mfcs = MFCS([(1,), (1, 2), (2, 3), (3,)])
        assert mfcs.elements == {(1, 2), (2, 3)}

    def test_container_protocol(self):
        mfcs = MFCS([(1, 2), (3, 4)])
        assert len(mfcs) == 2
        assert (1, 2) in mfcs
        assert (1,) not in mfcs
        assert sorted(mfcs) == [(1, 2), (3, 4)]

    def test_repr_previews_elements(self):
        assert "(1, 2)" in repr(MFCS([(1, 2)]))


class TestAddRemove:
    def test_add_rejects_covered_element(self):
        mfcs = MFCS([(1, 2, 3)])
        assert not mfcs.add((1, 2))
        assert mfcs.elements == {(1, 2, 3)}

    def test_add_removes_swallowed_members(self):
        mfcs = MFCS([(1, 2), (3,)])
        assert mfcs.add((1, 2, 3))
        assert mfcs.elements == {(1, 2, 3)}

    def test_add_empty_is_noop(self):
        mfcs = MFCS([(1,)])
        assert not mfcs.add(())
        assert mfcs.elements == {(1,)}

    def test_remove(self):
        mfcs = MFCS([(1, 2), (3, 4)])
        mfcs.remove((1, 2))
        assert mfcs.elements == {(3, 4)}


class TestExclude:
    def test_exclude_singleton_drops_item_everywhere(self):
        mfcs = MFCS([(1, 2, 3)])
        mfcs.exclude((2,))
        assert mfcs.elements == {(1, 3)}

    def test_exclude_untouched_elements_stay(self):
        mfcs = MFCS([(1, 2), (3, 4)])
        mfcs.exclude((1, 3))  # subset of neither
        assert mfcs.elements == {(1, 2), (3, 4)}

    def test_exclude_rejects_empty(self):
        with pytest.raises(ValueError):
            MFCS([(1,)]).exclude(())

    def test_exclude_element_itself_splits_into_immediate_subsets(self):
        # amendment A2: an infrequent MFCS element is split one level down
        mfcs = MFCS([(1, 2, 3)])
        mfcs.exclude((1, 2, 3))
        assert mfcs.elements == {(1, 2), (1, 3), (2, 3)}

    def test_exclude_drops_empty_replacement(self):
        # amendment A5: a 1-item element excluded leaves nothing behind
        mfcs = MFCS([(1,)])
        mfcs.exclude((1,))
        assert len(mfcs) == 0

    def test_exclude_respects_protected_cover(self):
        # amendment A4: replacements under an MFS member are dropped
        mfcs = MFCS([(2, 4, 5, 6)])
        mfcs.exclude((2, 6), protected=[(1, 2, 3, 4, 5)])
        # {4,5,6} survives; {2,4,5} is a subset of the protected member
        assert mfcs.elements == {(4, 5, 6)}

    def test_update_returns_true_without_caps(self):
        mfcs = MFCS([(1, 2, 3, 4)])
        assert mfcs.update([(1, 2), (3, 4)])

    def test_update_size_cap_aborts(self):
        mfcs = MFCS([tuple(range(1, 11))])
        assert not mfcs.update([(i, i + 1) for i in range(1, 10)], size_cap=2)

    def test_update_work_cap_aborts(self):
        mfcs = MFCS([tuple(range(1, 11))])
        assert not mfcs.update([(1, 2)], work_cap=1)

    def test_update_generous_caps_complete(self):
        mfcs = MFCS([(1, 2, 3, 4, 5)])
        assert mfcs.update([(1, 2)], size_cap=100, work_cap=100000)
        assert mfcs.elements == {(1, 3, 4, 5), (2, 3, 4, 5)}


class TestInvariants:
    def test_antichain_preserved_under_random_excludes(self):
        rng = random.Random(11)
        for trial in range(40):
            universe = tuple(range(1, rng.randint(4, 9)))
            mfcs = MFCS.for_universe(universe)
            infrequents = []
            for _ in range(rng.randint(1, 12)):
                size = rng.randint(1, min(3, len(universe)))
                infrequent = tuple(sorted(rng.sample(universe, size)))
                infrequents.append(infrequent)
                mfcs.exclude(infrequent)
                assert is_antichain(mfcs.elements)
            # Definition 1: no classified infrequent itemset stays covered
            for infrequent in infrequents:
                assert not mfcs.covers(infrequent)

    def test_exclusion_is_permanent(self):
        rng = random.Random(23)
        universe = tuple(range(1, 8))
        mfcs = MFCS.for_universe(universe)
        excluded = []
        for _ in range(10):
            infrequent = tuple(sorted(rng.sample(universe, 2)))
            excluded.append(infrequent)
            mfcs.exclude(infrequent)
            for earlier in excluded:
                assert not mfcs.covers(earlier)

    def test_coverage_only_loses_supersets_of_excluded(self):
        # every subset of the universe that contains no excluded itemset
        # must remain covered (this is the paper's Definition 1 coverage)
        from itertools import combinations

        universe = (1, 2, 3, 4, 5)
        excluded = [(1, 2), (3, 5)]
        mfcs = MFCS.for_universe(universe)
        for infrequent in excluded:
            mfcs.exclude(infrequent)
        for size in range(1, 6):
            for candidate in combinations(universe, size):
                contains_excluded = any(
                    is_subset(bad, candidate) for bad in excluded
                )
                assert mfcs.covers(candidate) == (not contains_excluded)

    def test_check_invariants_hook(self):
        mfcs = MFCS([(1, 2, 3)])
        mfcs.exclude((2, 3))
        mfcs.check_invariants(
            frequent=[(1, 2), (1, 3)], infrequent=[(2, 3)], protected=[]
        )

    def test_check_invariants_detects_missing_coverage(self):
        mfcs = MFCS([(1, 2)])
        with pytest.raises(AssertionError):
            mfcs.check_invariants(frequent=[(3,)])


class TestQueries:
    def test_covers(self):
        mfcs = MFCS([(1, 2, 3)])
        assert mfcs.covers((2, 3))
        assert not mfcs.covers((4,))

    def test_supersets_of(self):
        mfcs = MFCS([(1, 2, 3), (2, 3, 4)])
        assert sorted(mfcs.supersets_of((2, 3))) == [(1, 2, 3), (2, 3, 4)]

    def test_elements_longer_than(self):
        mfcs = MFCS([(1, 2, 3), (4, 5)])
        assert mfcs.elements_longer_than(2) == {(1, 2, 3)}
