"""Unit tests for the observability subsystem (``repro.obs``)."""

import io
import json
import logging

import pytest

from repro.obs import (
    Instrumentation,
    NOOP,
    SCHEMA_VERSION,
    SchemaError,
    capture,
    configure_logging,
    get_logger,
    validate_metrics_document,
    validate_metrics_file,
    validate_stats_document,
    validate_trace_event,
    validate_trace_file,
    validate_trace_lines,
)
from repro.obs.logsetup import resolve_level
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NullRegistry,
)
from repro.obs.tracing import NOOP_SPAN, NOOP_TRACER, Tracer


def trace_events(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestTracer:
    def test_meta_header_is_first_event(self):
        sink = io.StringIO()
        Tracer(sink, producer="unit-test")
        events = trace_events(sink)
        assert events[0]["type"] == "meta"
        assert events[0]["v"] == SCHEMA_VERSION
        assert events[0]["producer"] == "unit-test"

    def test_spans_emit_on_close_children_first(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("run"):
            with tracer.span("pass", k=1):
                pass
        events = trace_events(sink)
        names = [e["name"] for e in events if e["type"] == "span"]
        assert names == ["pass", "run"]

    def test_parent_inferred_from_nesting(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("run"):
            with tracer.span("pass"):
                with tracer.span("count"):
                    pass
            with tracer.span("pass"):
                pass
        spans = {e["name"]: e for e in trace_events(sink) if e["type"] == "span"}
        by_id = {
            e["span"]: e for e in trace_events(sink) if e["type"] == "span"
        }
        assert spans["run"]["parent"] is None
        assert by_id[spans["count"]["parent"]]["name"] == "pass"
        for event in trace_events(sink):
            if event["type"] == "span" and event["name"] == "pass":
                assert event["parent"] == spans["run"]["span"]

    def test_span_ids_unique_and_positive(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        for _ in range(3):
            with tracer.span("pass"):
                pass
        ids = [e["span"] for e in trace_events(sink) if e["type"] == "span"]
        assert len(set(ids)) == 3
        assert all(span_id > 0 for span_id in ids)

    def test_set_attaches_attrs(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("pass", k=2) as span:
            span.set(candidates=17, done=True)
        (event,) = [e for e in trace_events(sink) if e["type"] == "span"]
        assert event["attrs"] == {"k": 2, "candidates": 17, "done": True}
        assert event["dur"] >= 0

    def test_exception_marks_error_attr(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                raise RuntimeError("boom")
        (event,) = [e for e in trace_events(sink) if e["type"] == "span"]
        assert event["attrs"]["error"] == "RuntimeError"

    def test_exotic_attr_values_become_repr(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("run", payload=(1, 2)):
            pass
        (event,) = [e for e in trace_events(sink) if e["type"] == "span"]
        assert event["attrs"]["payload"] == "(1, 2)"

    def test_events_emitted_counts_meta_and_spans(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.span("run"):
            pass
        assert tracer.events_emitted == 2

    def test_to_path_writes_valid_trace(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        tracer = Tracer.to_path(path)
        with tracer.span("run"):
            pass
        tracer.close()
        assert validate_trace_file(path) == 2

    def test_noop_tracer_returns_shared_span(self):
        span = NOOP_TRACER.span("run", k=1)
        assert span is NOOP_SPAN
        assert span.set(x=1) is NOOP_SPAN
        with span:
            pass
        assert not NOOP_TRACER.enabled
        NOOP_TRACER.close()


class TestTracerBind:
    def test_bound_attrs_stamp_every_span(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.bind(request_id="req-1"):
            with tracer.span("run"):
                with tracer.span("pass", k=1):
                    pass
        spans = [e for e in trace_events(sink) if e["type"] == "span"]
        assert len(spans) == 2
        assert all(e["attrs"]["request_id"] == "req-1" for e in spans)

    def test_binding_restores_on_exit(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.bind(request_id="req-1"):
            pass
        with tracer.span("run"):
            pass
        (event,) = [e for e in trace_events(sink) if e["type"] == "span"]
        assert "request_id" not in event.get("attrs", {})

    def test_explicit_attrs_win_over_ambient(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.bind(k=9):
            with tracer.span("pass", k=1):
                pass
        (event,) = [e for e in trace_events(sink) if e["type"] == "span"]
        assert event["attrs"]["k"] == 1

    def test_sink_collects_closed_span_events(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        collected = []
        with tracer.bind(sink=collected, request_id="req-1"):
            with tracer.span("run"):
                pass
        assert [e["name"] for e in collected] == ["run"]
        assert collected[0]["attrs"]["request_id"] == "req-1"

    def test_none_valued_attrs_are_dropped(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.bind(request_id=None):
            with tracer.span("run"):
                pass
        (event,) = [e for e in trace_events(sink) if e["type"] == "span"]
        assert "request_id" not in event.get("attrs", {})

    def test_bindings_nest_and_restore(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        with tracer.bind(a=1):
            with tracer.bind(b=2):
                with tracer.span("inner"):
                    pass
            with tracer.span("outer"):
                pass
        spans = {
            e["name"]: e for e in trace_events(sink) if e["type"] == "span"
        }
        assert spans["inner"]["attrs"] == {"a": 1, "b": 2}
        assert spans["outer"]["attrs"] == {"a": 1}

    def test_noop_tracer_bind_is_inert(self):
        with NOOP_TRACER.bind(request_id="x"):
            pass


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_keeps_last_value(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (4.0, 1.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.total == 8.0
        assert histogram.mean == pytest.approx(8.0 / 3)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_registry_instruments_are_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_merge_counters(self):
        registry = MetricsRegistry()
        registry.counter("engine.records_read").inc(10)
        registry.merge_counters({"engine.records_read": 5, "shard.rows": 3})
        assert registry.counter("engine.records_read").value == 15
        assert registry.counter("shard.rows").value == 3

    def test_to_dict_is_schema_valid(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(1)
        document = registry.to_dict()
        validate_metrics_document(document)
        assert document["counters"] == {"c": 1}
        assert document["gauges"] == {"g": 2.5}
        assert document["histograms"]["h"]["count"] == 1

    def test_write_round_trips(self, tmp_path):
        path = str(tmp_path / "m.json")
        registry = MetricsRegistry()
        registry.counter("c").inc(7)
        registry.write(path)
        validate_metrics_file(path)
        with open(path) as handle:
            assert json.load(handle)["counters"]["c"] == 7

    def test_null_registry_swallows_writes(self):
        registry = NullRegistry()
        instrument = registry.counter("c")
        assert instrument is NULL_INSTRUMENT
        instrument.inc(100)
        instrument.set(5)
        instrument.observe(1.0)
        assert instrument.value == 0
        assert registry.to_dict()["counters"] == {}


class TestInstrumentation:
    def test_capture_without_paths_is_noop(self):
        assert capture() is NOOP
        assert not NOOP.enabled
        assert NOOP.span("run") is NOOP_SPAN
        assert NOOP.counter("c") is NULL_INSTRUMENT
        assert NOOP.gauge("g") is NULL_INSTRUMENT
        assert NOOP.histogram("h") is NULL_INSTRUMENT
        NOOP.finish()  # must be a harmless no-op

    def test_capture_with_paths_writes_both_files(self, tmp_path):
        trace_path = str(tmp_path / "run.jsonl")
        metrics_path = str(tmp_path / "m.json")
        obs = capture(trace_path=trace_path, metrics_path=metrics_path)
        assert obs.enabled
        with obs.span("run"):
            obs.counter("miner.runs").inc()
        obs.finish()
        assert validate_trace_file(trace_path) == 2
        validate_metrics_file(metrics_path)

    def test_capture_metrics_only_uses_noop_tracer(self, tmp_path):
        obs = capture(metrics_path=str(tmp_path / "m.json"))
        assert obs.enabled
        assert obs.span("run") is NOOP_SPAN
        obs.finish()
        validate_metrics_file(str(tmp_path / "m.json"))

    def test_context_manager_finishes(self, tmp_path):
        metrics_path = str(tmp_path / "m.json")
        with capture(metrics_path=metrics_path) as obs:
            obs.counter("c").inc()
        validate_metrics_file(metrics_path)

    def test_default_construction_has_null_sinks(self):
        obs = Instrumentation()
        assert obs.tracer is NOOP_TRACER
        obs.counter("c").inc()
        assert obs.metrics.to_dict()["counters"] == {"c": 1}
        obs.finish()  # no metrics_path: nothing written, nothing raised


class TestSchemaValidators:
    def test_valid_span_event_passes(self):
        validate_trace_event(
            {
                "v": SCHEMA_VERSION,
                "type": "span",
                "span": 1,
                "parent": None,
                "name": "run",
                "ts": 0.0,
                "dur": 0.1,
                "attrs": {"k": 1, "label": "x", "f": 0.5, "b": True, "n": None},
            }
        )

    @pytest.mark.parametrize(
        "mutation",
        [
            {"v": 99},
            {"type": "event"},
            {"span": 0},
            {"span": "one"},
            {"parent": -3},
            {"name": ""},
            {"dur": -1.0},
            {"attrs": {"bad": [1, 2]}},
        ],
    )
    def test_bad_span_event_rejected(self, mutation):
        event = {
            "v": SCHEMA_VERSION,
            "type": "span",
            "span": 1,
            "parent": None,
            "name": "run",
            "ts": 0.0,
            "dur": 0.0,
            "attrs": {},
        }
        event.update(mutation)
        with pytest.raises(SchemaError):
            validate_trace_event(event)

    def test_meta_event_requires_pid_and_producer(self):
        with pytest.raises(SchemaError):
            validate_trace_event(
                {"v": SCHEMA_VERSION, "type": "meta", "ts": 0.0, "pid": "x",
                 "producer": "p"}
            )

    def test_trace_lines_require_meta_first(self):
        span_line = json.dumps(
            {"v": SCHEMA_VERSION, "type": "span", "span": 1, "parent": None,
             "name": "run", "ts": 0.0, "dur": 0.0, "attrs": {}}
        )
        with pytest.raises(SchemaError, match="meta header"):
            validate_trace_lines([span_line])

    def test_trace_lines_reject_non_json(self):
        with pytest.raises(SchemaError, match="line 1"):
            validate_trace_lines(["not json"])

    def test_metrics_document_rejects_float_counter(self):
        with pytest.raises(SchemaError):
            validate_metrics_document(
                {"v": SCHEMA_VERSION, "type": "metrics",
                 "counters": {"c": 1.5}, "gauges": {}, "histograms": {}}
            )

    def test_stats_document_round_trip_validates(self):
        from repro.core.stats import MiningStats

        stats = MiningStats(algorithm="pincer-search")
        entry = stats.new_pass(1)
        entry.bottom_up_candidates = 4
        entry.seconds = 0.01
        stats.records_read = 20
        document = stats.to_dict()
        validate_stats_document(document)
        rebuilt = MiningStats.from_dict(document)
        assert rebuilt.to_dict() == document

    def test_stats_document_rejects_bad_pass_number(self):
        with pytest.raises(SchemaError):
            validate_stats_document(
                {"v": SCHEMA_VERSION, "type": "mining_stats",
                 "algorithm": "x", "seconds": 0.0, "records_read": 0,
                 "passes": [{"pass_number": 0}]}
            )

    def test_stats_from_dict_rejects_future_version(self):
        from repro.core.stats import MiningStats

        with pytest.raises(ValueError, match="schema version"):
            MiningStats.from_dict({"v": 2, "type": "mining_stats"})

    def test_schema_cli_validates_files(self, tmp_path, capsys):
        from repro.obs.schema import main as schema_main

        trace_path = str(tmp_path / "run.jsonl")
        tracer = Tracer.to_path(trace_path)
        with tracer.span("run"):
            pass
        tracer.close()
        metrics_path = str(tmp_path / "m.json")
        MetricsRegistry().write(metrics_path)
        assert schema_main([trace_path, "--metrics", metrics_path]) == 0
        assert "events ok" in capsys.readouterr().err

    def test_schema_cli_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"v": 1, "type": "span"}\n')
        from repro.obs.schema import main as schema_main

        assert schema_main([str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err


class TestLogging:
    def test_get_logger_roots_names_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("core.pincer").name == "repro.core.pincer"
        assert get_logger("repro.core.pincer").name == "repro.core.pincer"

    def test_resolve_level(self):
        assert resolve_level("debug") == logging.DEBUG
        assert resolve_level("INFO") == logging.INFO
        assert resolve_level(logging.WARNING) == logging.WARNING
        with pytest.raises(ValueError):
            resolve_level("chatty")

    def test_configure_logging_is_idempotent(self):
        stream = io.StringIO()
        logger = configure_logging("debug", stream=stream)
        before = len(logger.handlers)
        configure_logging("info", stream=stream)
        try:
            assert len(logger.handlers) == before
            assert logger.level == logging.INFO
        finally:
            configure_logging(logging.WARNING, stream=io.StringIO())

    def test_configured_stream_receives_records(self):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        try:
            get_logger("tests.obs").debug("pass %d complete", 3)
            assert "repro.tests.obs: pass 3 complete" in stream.getvalue()
        finally:
            configure_logging(logging.WARNING, stream=io.StringIO())


class TestHistogramSpread:
    def test_stddev_matches_population_formula(self):
        histogram = Histogram()
        for value in (2.0, 4.0, 6.0):
            histogram.observe(value)
        assert histogram.sumsq == pytest.approx(56.0)
        # population stddev of {2,4,6} is sqrt(8/3)
        assert histogram.stddev == pytest.approx((8.0 / 3) ** 0.5)

    def test_empty_and_single_observation_stddev_is_zero(self):
        histogram = Histogram()
        assert histogram.stddev == 0.0
        histogram.observe(5.0)
        assert histogram.stddev == 0.0

    def test_to_dict_carries_sumsq_and_stddev(self):
        histogram = Histogram()
        histogram.observe(3.0)
        cells = histogram.to_dict()
        assert cells["sumsq"] == 9.0
        assert cells["stddev"] == 0.0
        assert set(cells) == {
            "count", "total", "min", "max", "sumsq", "stddev",
            "p50", "p95", "p99",
        }


class TestSchemaV2Compat:
    def test_v1_metrics_histogram_without_spread_accepted(self):
        document = {
            "v": 1,
            "type": "metrics",
            "counters": {},
            "gauges": {},
            "histograms": {
                "engine.batch": {"count": 1, "total": 2.0, "min": 2.0, "max": 2.0}
            },
        }
        validate_metrics_document(document)

    def test_v2_metrics_histogram_requires_spread(self):
        document = {
            "v": SCHEMA_VERSION,
            "type": "metrics",
            "counters": {},
            "gauges": {},
            "histograms": {
                "engine.batch": {"count": 1, "total": 2.0, "min": 2.0, "max": 2.0}
            },
        }
        with pytest.raises(SchemaError):
            validate_metrics_document(document)
        document["histograms"]["engine.batch"].update(sumsq=4.0, stddev=0.0)
        validate_metrics_document(document)

    def test_v1_trace_events_still_accepted(self):
        validate_trace_event(
            {"v": 1, "type": "span", "name": "pass", "span": 1,
             "ts": 1.0, "dur": 0.5}
        )

    def test_progress_event_requires_phase_and_scalars(self):
        validate_trace_event(
            {"v": SCHEMA_VERSION, "type": "progress", "ts": 1.0,
             "phase": "pass", "k": 1, "candidates": 5}
        )
        with pytest.raises(SchemaError):
            validate_trace_event(
                {"v": SCHEMA_VERSION, "type": "progress", "ts": 1.0,
                 "phase": ""}
            )
        with pytest.raises(SchemaError):
            validate_trace_event(
                {"v": SCHEMA_VERSION, "type": "progress", "ts": 1.0,
                 "phase": "pass", "bad": [1, 2]}
            )

    def test_truncated_event_requires_positive_dropped(self):
        validate_trace_event(
            {"v": SCHEMA_VERSION, "type": "truncated", "ts": 1.0,
             "dropped": 3, "max_events": 10}
        )
        with pytest.raises(SchemaError):
            validate_trace_event(
                {"v": SCHEMA_VERSION, "type": "truncated", "ts": 1.0,
                 "dropped": 0}
            )


class TestTraceCap:
    def test_cap_drops_and_marks_truncation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path), max_events=3)
        for k in range(6):
            with tracer.span("pass", k=k):
                pass
        tracer.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[-1]["type"] == "truncated"
        assert events[-1]["dropped"] == 4  # 1 meta + 6 spans - 3 kept
        assert events[-1]["max_events"] == 3
        emitted = [e for e in events if e["type"] != "truncated"]
        assert len(emitted) == 3
        validate_trace_lines(path.read_text().splitlines())

    def test_no_marker_when_under_cap(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path), max_events=100)
        with tracer.span("run"):
            pass
        tracer.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert all(e["type"] != "truncated" for e in events)

    def test_cap_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            Tracer.to_path(str(tmp_path / "t.jsonl"), max_events=0)


class TestCaptureProfileAndProgress:
    def test_profile_requires_trace_path(self, tmp_path):
        with pytest.raises(ValueError):
            capture(profile=True)
        with pytest.raises(ValueError):
            capture(metrics_path=str(tmp_path / "m.json"), profile=True)

    def test_profile_attaches_cpu_and_memory_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = capture(trace_path=str(path), profile=True)
        with obs.span("run"):
            with obs.span("pass", k=1):
                blob = bytearray(64 * 1024)
                del blob
        obs.finish()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        spans = [e for e in events if e["type"] == "span"]
        assert spans
        for event in spans:
            assert "cpu_s" in event["attrs"]
            assert "mem_peak_kb" in event["attrs"]
        validate_trace_lines(path.read_text().splitlines())

    def test_progress_true_builds_reporter_and_enables_capture(self):
        import repro.obs.progress as progress_module

        obs = capture(progress=True)
        try:
            assert obs.enabled
            assert isinstance(obs.progress, progress_module.ProgressReporter)
        finally:
            obs.finish()

    def test_progress_reporter_mirrors_into_trace(self, tmp_path):
        from repro.obs.progress import ProgressReporter

        path = tmp_path / "trace.jsonl"
        reporter = ProgressReporter(stream=None)
        obs = capture(trace_path=str(path), progress=reporter)
        with obs.span("run"):
            obs.progress.on_pass(
                k=1, candidates=3, mfcs_size=1, candidate_bound=2
            )
        obs.finish()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(e["type"] == "progress" for e in events)
