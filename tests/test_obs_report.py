"""Tests for the span-tree trace report (``repro.obs.report``)."""

import json

from repro.obs.report import (
    build_span_tree,
    filter_request,
    group_requests,
    main as report_main,
    render_report,
    render_requests,
)
from repro.obs.tracing import Tracer


def _span(name, span_id, parent=None, ts=0.0, dur=1.0, **attrs):
    event = {
        "v": 2,
        "type": "span",
        "name": name,
        "span": span_id,
        "ts": ts,
        "dur": dur,
    }
    if parent is not None:
        event["parent"] = parent
    if attrs:
        event["attrs"] = attrs
    return event


class TestBuildSpanTree:
    def test_parent_links_resolve(self):
        events = [
            _span("run", 1, ts=0.0, dur=3.0),
            _span("pass", 2, parent=1, ts=0.1, dur=1.0),
            _span("pass", 3, parent=1, ts=1.2, dur=1.5),
        ]
        roots, nodes = build_span_tree(events)
        assert len(roots) == 1 and len(nodes) == 3
        assert [child.name for child in roots[0].children] == ["pass", "pass"]

    def test_self_time_subtracts_direct_children(self):
        events = [
            _span("run", 1, ts=0.0, dur=3.0),
            _span("pass", 2, parent=1, ts=0.1, dur=1.0),
            _span("pass", 3, parent=1, ts=1.2, dur=1.5),
        ]
        roots, _ = build_span_tree(events)
        assert abs(roots[0].self_time - 0.5) < 1e-9

    def test_orphan_parent_becomes_root(self):
        events = [_span("stray", 7, parent=99)]
        roots, nodes = build_span_tree(events)
        assert len(roots) == 1 and roots[0].name == "stray"

    def test_label_includes_known_attrs(self):
        events = [_span("pass", 1, k=2, engine="packed", irrelevant="x")]
        roots, _ = build_span_tree(events)
        label = roots[0].label()
        assert "k=2" in label and "engine=packed" in label
        assert "irrelevant" not in label


class TestRenderReport:
    def test_tree_indentation_and_columns(self):
        events = [
            _span("run", 1, ts=0.0, dur=2.0, cpu_s=1.9, mem_peak_kb=100.0),
            _span("pass", 2, parent=1, ts=0.1, dur=1.0),
        ]
        text = render_report(events)
        lines = text.splitlines()
        assert lines[0].startswith("span")
        assert "wall(s)" in lines[0] and "cpu(s)" in lines[0]
        run_row = [l for l in lines if l.startswith("run")][0]
        assert "1.9000" in run_row and "100.0" in run_row
        pass_row = [l for l in lines if l.lstrip().startswith("pass")][0]
        assert pass_row.startswith("  pass")  # indented under run
        assert "-" in pass_row  # unprofiled columns show a dash

    def test_top_n_ranked_by_self_time(self):
        events = [
            _span("run", 1, ts=0.0, dur=3.0),
            _span("hot", 2, parent=1, ts=0.1, dur=2.5),
        ]
        text = render_report(events, top=2)
        top_section = text.split("top 2 spans by self time:")[1]
        first = top_section.strip().splitlines()[0]
        assert first.strip().startswith("hot")

    def test_max_rows_truncates_tree(self):
        events = [_span("run", 1, ts=0.0, dur=5.0)] + [
            _span("pass", i, parent=1, ts=float(i), dur=0.1)
            for i in range(2, 12)
        ]
        text = render_report(events, max_rows=3, top=0)
        assert "8 more spans" in text

    def test_truncated_marker_warns(self):
        events = [
            _span("run", 1),
            {"v": 2, "type": "truncated", "ts": 1.0, "dropped": 4},
        ]
        text = render_report(events)
        assert "trace truncated, 4 events dropped" in text


class TestRequestGrouping:
    def _serve_trace(self):
        return [
            _span("run", 1, ts=0.0, dur=1.0, request_id="req-1-000001"),
            _span("pass", 2, parent=1, ts=0.1, dur=0.5,
                  request_id="req-1-000001"),
            _span("run", 3, ts=2.0, dur=0.2, request_id="req-1-000002"),
            _span("command", 4, ts=3.0, dur=0.1),  # no request id
        ]

    def test_filter_request_keeps_one_query(self):
        events = self._serve_trace()
        filtered = filter_request(events, "req-1-000001")
        spans = [e for e in filtered if e.get("type") == "span"]
        assert {e["span"] for e in spans} == {1, 2}

    def test_group_requests_summarizes_per_id(self):
        groups = group_requests(self._serve_trace())
        assert set(groups) == {"req-1-000001", "req-1-000002"}
        first = groups["req-1-000001"]
        assert first["spans"] == 2
        assert first["roots"] == ["run"]
        assert abs(first["wall_s"] - 1.0) < 1e-9

    def test_render_requests_table(self):
        text = render_requests(self._serve_trace())
        assert "req-1-000001" in text and "req-1-000002" in text
        assert render_requests([]).startswith("no request-scoped spans")

    def test_cli_request_flags(self, tmp_path, capsys):
        path = tmp_path / "serve.jsonl"
        with open(path, "w") as handle:
            for event in self._serve_trace():
                handle.write(json.dumps(event) + "\n")
        assert report_main([str(path), "--requests"]) == 0
        assert "req-1-000002" in capsys.readouterr().out
        assert report_main([str(path), "--request", "req-1-000002"]) == 0
        out = capsys.readouterr().out
        assert "run" in out


class TestReportCli:
    def test_cli_renders_recorded_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path))
        with tracer.span("run", algorithm="pincer"):
            with tracer.span("pass", k=1):
                pass
        tracer.close()
        rc = report_main([str(path), "--top", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "run algorithm=pincer" in captured.out
        assert "top 2 spans by self time" in captured.out

    def test_cli_missing_file(self, tmp_path, capsys):
        rc = report_main([str(tmp_path / "nope.jsonl")])
        captured = capsys.readouterr()
        assert rc == 1
        assert "cannot read trace" in captured.err
