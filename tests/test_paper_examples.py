"""The worked examples from the paper, as executable tests.

Three fragments of the paper come with fully specified inputs and
outputs; these tests pin our implementation to them:

* Section 3.2 — the MFCS-gen example: MFCS ``{{1..6}}`` updated with
  infrequent ``{1,6}`` and ``{3,6}``.
* Section 3.4 — the recovery example: ``L_3`` reduced to
  ``{{2,4,6}, {2,5,6}, {4,5,6}}`` by the maximal frequent itemset
  ``{1,2,3,4,5}``, from which the candidate ``{2,4,5,6}`` must be
  recovered.
* Section 4.1.3 — the non-monotone-MFS example: lowering the minimum
  support can *shrink* the maximum frequent set.
"""

from repro.core.candidates import (
    apriori_join,
    generate_candidates,
    pincer_prune,
    recovery,
)
from repro.core.mfcs import MFCS
from repro.db.transaction_db import TransactionDatabase
from repro.algorithms.brute_force import brute_force_mfs


class TestSection32MfcsGen:
    """Paper Section 3.2: the MFCS-gen worked example."""

    def test_first_infrequent_itemset_splits_the_top(self):
        mfcs = MFCS([(1, 2, 3, 4, 5, 6)])
        mfcs.exclude((1, 6))
        assert mfcs.elements == {(1, 2, 3, 4, 5), (2, 3, 4, 5, 6)}

    def test_second_infrequent_itemset_refines_further(self):
        mfcs = MFCS([(1, 2, 3, 4, 5, 6)])
        mfcs.exclude((1, 6))
        mfcs.exclude((3, 6))
        # {2,3,4,5} is generated but discarded: it is a subset of
        # {1,2,3,4,5} already in the MFCS (minimality).
        assert mfcs.elements == {(1, 2, 3, 4, 5), (2, 4, 5, 6)}

    def test_batch_update_matches_sequential_excludes(self):
        sequential = MFCS([(1, 2, 3, 4, 5, 6)])
        sequential.exclude((1, 6))
        sequential.exclude((3, 6))
        batched = MFCS([(1, 2, 3, 4, 5, 6)])
        assert batched.update([(1, 6), (3, 6)])
        assert batched.elements == sequential.elements

    def test_introduction_example_m_levels_in_one_pass(self):
        # Section 3.1: "If some m 1-itemsets are infrequent after the
        # first pass, MFCS will have one element of cardinality n - m."
        mfcs = MFCS.for_universe(range(1, 11))
        for infrequent_item in (2, 5, 9):
            mfcs.exclude((infrequent_item,))
        assert mfcs.elements == {(1, 3, 4, 6, 7, 8, 10)}


class TestSection34Recovery:
    """Paper Section 3.4: the join gap and its recovery."""

    L3 = [
        (1, 2, 3), (1, 2, 4), (1, 2, 5), (1, 3, 4), (1, 3, 5), (1, 4, 5),
        (2, 3, 4), (2, 3, 5), (2, 4, 5), (2, 4, 6), (2, 5, 6), (3, 4, 5),
        (4, 5, 6),
    ]
    MAXIMAL = (1, 2, 3, 4, 5)

    def reduced_l3(self):
        return [
            itemset
            for itemset in self.L3
            if not set(itemset) <= set(self.MAXIMAL)
        ]

    def test_reduced_frequent_set_is_as_in_the_paper(self):
        assert self.reduced_l3() == [(2, 4, 6), (2, 5, 6), (4, 5, 6)]

    def test_plain_join_misses_the_candidate(self):
        # no two survivors share a 2-prefix -> the join yields nothing
        assert apriori_join(self.reduced_l3()) == set()

    def test_recovery_restores_exactly_the_missing_candidate(self):
        recovered = recovery(self.reduced_l3(), [self.MAXIMAL], 3)
        assert recovered == {(2, 4, 5, 6)}

    def test_new_prune_keeps_the_recovered_candidate(self):
        # {2,4,5} is not in the reduced L_3 but is a subset of the MFS
        # element, so the candidate must survive (amendment A3).
        kept = pincer_prune(
            {(2, 4, 5, 6)}, set(self.reduced_l3()), [self.MAXIMAL]
        )
        assert kept == {(2, 4, 5, 6)}

    def test_full_candidate_generation_pipeline(self):
        candidates = generate_candidates(self.reduced_l3(), [self.MAXIMAL], 3)
        assert candidates == {(2, 4, 5, 6)}

    def test_candidates_that_are_mfs_subsets_are_pruned(self):
        # the unreduced L_3 joined normally would produce many subsets of
        # {1,2,3,4,5}; the new prune must remove all of them
        candidates = generate_candidates(self.L3, [self.MAXIMAL], 3)
        assert candidates == {(2, 4, 5, 6)}


class TestFigure2EndToEnd:
    """A database realising the paper's Figure 2 scenario, mined for real.

    Six items; minimum support 50% over six transactions (threshold 3):

    * all six 1-itemsets are frequent;
    * exactly the pairs {1,6} and {3,6} are infrequent (support 0);
    * ``L_3`` is exactly the paper's 13-itemset list;
    * the maximum frequent set is {{1,2,3,4,5}, {2,4,5,6}} — the two
      ellipses of Figure 2.
    """

    def build_database(self):
        return TransactionDatabase(
            [[1, 2, 3, 4, 5]] * 3 + [[2, 4, 5, 6]] * 3
        )

    def test_level_structure_matches_figure(self):
        from repro.algorithms.brute_force import brute_force_frequents

        frequents = brute_force_frequents(self.build_database(), 0.5)
        level2 = sorted(f for f in frequents if len(f) == 2)
        assert (1, 6) not in level2 and (3, 6) not in level2
        assert len(level2) == 13  # 15 pairs minus the two infrequent
        level3 = sorted(f for f in frequents if len(f) == 3)
        assert level3 == sorted(TestSection34Recovery.L3)

    def test_pincer_finds_both_maximal_itemsets(self):
        from repro.core.pincer import pincer_search

        result = pincer_search(self.build_database(), 0.5, adaptive=False)
        assert set(result.mfs) == {(1, 2, 3, 4, 5), (2, 4, 5, 6)}

    def test_both_maximal_itemsets_discovered_top_down(self):
        from repro.core.pincer import pincer_search

        result = pincer_search(self.build_database(), 0.5, adaptive=False)
        # the MFCS (not the bottom-up frontier) discovers both
        assert result.stats.total_maximal_found_in_mfcs == 2

    def test_early_discovery_saves_passes_over_apriori(self):
        from repro.algorithms.apriori import apriori
        from repro.core.pincer import pincer_search

        pincer = pincer_search(self.build_database(), 0.5, adaptive=False)
        baseline = apriori(self.build_database(), 0.5)
        # Apriori must walk all 5 levels; the pincer stops early
        assert baseline.stats.num_passes == 5
        assert pincer.stats.num_passes < baseline.stats.num_passes

    def test_subsets_of_discovered_maximal_itemsets_are_pruned(self):
        from repro.core.pincer import pincer_search

        result = pincer_search(self.build_database(), 0.5, adaptive=False)
        pruned = sum(
            stats.pruned_as_mfs_subsets for stats in result.stats.passes
        )
        assert pruned > 0


class TestSection413NonMonotoneMfs:
    """Paper Section 4.1.3: |MFS| is not monotone in the minimum support."""

    def build_database(self):
        # 9 transactions: {1,2}, {1,3}, {2,3} x2 each, {1,2,3} x3
        transactions = (
            [[1, 2]] * 2 + [[1, 3]] * 2 + [[2, 3]] * 2 + [[1, 2, 3]] * 3
        )
        return TransactionDatabase(transactions)

    def test_higher_support_gives_three_maximal_pairs(self):
        db = self.build_database()
        # support({i,j}) = 5/9 each; support({1,2,3}) = 3/9
        assert brute_force_mfs(db, 5 / 9) == {(1, 2), (1, 3), (2, 3)}

    def test_lower_support_gives_one_maximal_triple(self):
        db = self.build_database()
        assert brute_force_mfs(db, 3 / 9) == {(1, 2, 3)}

    def test_mfs_size_decreased_while_support_decreased(self):
        db = self.build_database()
        high = brute_force_mfs(db, 5 / 9)
        low = brute_force_mfs(db, 3 / 9)
        assert len(low) < len(high)
