"""Tests for association-rule generation (repro.rules)."""

import pytest

from repro.algorithms.apriori import Apriori
from repro.core.pincer import pincer_search
from repro.db.transaction_db import TransactionDatabase
from repro.rules.from_mfs import (
    expand_mfs_supports,
    mfs_subsets_to_depth,
    rules_from_mfs,
)
from repro.rules.generation import (
    AssociationRule,
    generate_rules,
    interesting_rules,
)


def rule_db():
    # strong rule: {2} -> {1} (conf 1.0); weaker: {1} -> {2} (conf 0.75)
    return TransactionDatabase([[1, 2], [1, 2], [1, 2], [1], [3]])


class TestAssociationRule:
    def test_validates_non_empty_sides(self):
        with pytest.raises(ValueError):
            AssociationRule((), (1,), 0.5, 0.9)
        with pytest.raises(ValueError):
            AssociationRule((1,), (), 0.5, 0.9)

    def test_validates_disjoint_sides(self):
        with pytest.raises(ValueError):
            AssociationRule((1,), (1, 2), 0.5, 0.9)

    def test_itemset_property(self):
        rule = AssociationRule((2,), (1,), 0.6, 1.0)
        assert rule.itemset == (1, 2)

    def test_str_rendering(self):
        rule = AssociationRule((2,), (1,), 0.6, 1.0)
        assert str(rule) == "{2} -> {1}  (sup=0.6000, conf=1.0000)"


class TestGenerateRules:
    def test_confidence_threshold_filters(self):
        supports = {(1,): 4, (2,): 3, (1, 2): 3}
        rules = generate_rules(supports, 5, 0.9)
        assert [(r.antecedent, r.consequent) for r in rules] == [((2,), (1,))]

    def test_confidence_and_support_values(self):
        supports = {(1,): 4, (2,): 3, (1, 2): 3}
        (rule,) = generate_rules(supports, 5, 0.9)
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(3 / 5)
        assert rule.lift == pytest.approx(1.0 / (4 / 5))

    def test_multi_item_consequents_are_grown(self):
        # perfect correlation: every rule from {1,2,3} has confidence 1
        supports = {
            (1,): 4, (2,): 4, (3,): 4,
            (1, 2): 4, (1, 3): 4, (2, 3): 4, (1, 2, 3): 4,
        }
        rules = generate_rules(supports, 4, 0.99)
        consequents = {
            rule.consequent for rule in rules if rule.itemset == (1, 2, 3)
        }
        assert consequents == {
            (1,), (2,), (3,), (1, 2), (1, 3), (2, 3),
        }

    def test_min_support_count_excludes_rare_itemsets(self):
        supports = {(1,): 4, (2,): 3, (1, 2): 1}
        assert generate_rules(supports, 5, 0.1, min_support_count=2) == []

    def test_missing_antecedent_support_skips_rule(self):
        supports = {(1, 2): 3, (1,): 4}  # (2,) unknown
        rules = generate_rules(supports, 5, 0.0)
        assert [(r.antecedent, r.consequent) for r in rules] == [((1,), (2,))]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_rules({}, 5, 1.5)
        with pytest.raises(ValueError):
            generate_rules({}, 0, 0.5)

    def test_agrees_with_exhaustive_enumeration(self):
        from itertools import combinations

        db = TransactionDatabase(
            [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3], [4]]
        )
        supports = Apriori().frequent_itemsets(db, min_count=2)
        minconf = 0.7
        got = {
            (rule.antecedent, rule.consequent)
            for rule in generate_rules(supports, len(db), minconf,
                                       min_support_count=2)
        }
        expected = set()
        for itemset_, count in supports.items():
            if len(itemset_) < 2:
                continue
            for size in range(1, len(itemset_)):
                for consequent in combinations(itemset_, size):
                    antecedent = tuple(
                        i for i in itemset_ if i not in consequent
                    )
                    conf = count / supports[antecedent]
                    if conf >= minconf:
                        expected.add((antecedent, consequent))
        assert got == expected


class TestInterestingRules:
    def test_sorted_by_confidence(self):
        rules = [
            AssociationRule((1,), (2,), 0.4, 0.8, lift=1.2),
            AssociationRule((2,), (1,), 0.4, 0.9, lift=1.5),
        ]
        ordered = interesting_rules(rules)
        assert ordered[0].confidence == 0.9

    def test_lift_filter(self):
        rules = [
            AssociationRule((1,), (2,), 0.4, 0.8, lift=0.7),
            AssociationRule((2,), (1,), 0.4, 0.9, lift=1.5),
        ]
        assert len(interesting_rules(rules, min_lift=1.0)) == 1

    def test_top_limits_output(self):
        rules = [
            AssociationRule((i,), (i + 100,), 0.4, 0.5 + i / 100, lift=2.0)
            for i in range(10)
        ]
        assert len(interesting_rules(rules, top=3)) == 3

    def test_unknown_lift_dropped_when_filtering(self):
        rules = [AssociationRule((1,), (2,), 0.4, 0.9, lift=None)]
        assert interesting_rules(rules, min_lift=1.0) == []
        assert interesting_rules(rules, min_lift=0.0) == rules


class TestMfsSubsets:
    def test_depth_zero_is_the_mfs(self):
        assert mfs_subsets_to_depth([(1, 2, 3)], 0) == {(1, 2, 3)}

    def test_depth_one_adds_immediate_subsets(self):
        subsets = mfs_subsets_to_depth([(1, 2, 3)], 1)
        assert subsets == {(1, 2, 3), (1, 2), (1, 3), (2, 3)}

    def test_depth_bounded_by_member_length(self):
        subsets = mfs_subsets_to_depth([(1, 2)], 99)
        assert subsets == {(1, 2), (1,), (2,)}

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            mfs_subsets_to_depth([(1, 2)], -1)

    def test_shared_subsets_deduplicated(self):
        subsets = mfs_subsets_to_depth([(1, 2), (2, 3)], 1)
        assert subsets == {(1, 2), (2, 3), (1,), (2,), (3,)}


class TestRulesFromMfs:
    def test_one_extra_pass_counts_missing_subsets(self):
        db = rule_db()
        result = pincer_search(db, 0.5)
        from repro.db.counting import get_counter

        counter = get_counter("bitmap")
        supports = expand_mfs_supports(db, result, depth=2, counter=counter)
        assert counter.passes <= 1  # "by reading the database once"
        assert supports[(1,)] == 4
        assert supports[(2,)] == 3

    def test_rules_match_apriori_based_generation(self):
        db = TransactionDatabase(
            [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3], [4]]
        )
        result = pincer_search(db, min_count=2)
        via_mfs = rules_from_mfs(db, result, 0.7, depth=None)
        supports = Apriori().frequent_itemsets(db, min_count=2)
        via_apriori = generate_rules(supports, len(db), 0.7,
                                     min_support_count=2)
        as_pairs = lambda rules: {
            (r.antecedent, r.consequent, r.confidence) for r in rules
        }
        assert as_pairs(via_mfs) == as_pairs(via_apriori)

    def test_depth_limits_rule_sources(self):
        db = TransactionDatabase([[1, 2, 3, 4]] * 4 + [[1, 2]])
        result = pincer_search(db, 0.5)
        shallow = rules_from_mfs(db, result, 0.0, depth=1)
        deep = rules_from_mfs(db, result, 0.0, depth=None)
        assert len(shallow) <= len(deep)

    def test_empty_mfs_yields_no_rules(self):
        db = TransactionDatabase([[1], [2], [3]])
        result = pincer_search(db, 0.9)
        assert rules_from_mfs(db, result, 0.5) == []
