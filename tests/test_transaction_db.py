"""Unit tests for the transaction database (repro.db.transaction_db)."""

import pytest

from repro.db.transaction_db import TransactionDatabase


class TestConstruction:
    def test_universe_inferred_from_transactions(self):
        db = TransactionDatabase([[2, 1], [3]])
        assert db.universe == (1, 2, 3)

    def test_explicit_universe_preserved(self):
        db = TransactionDatabase([[1]], universe=range(1, 6))
        assert db.universe == (1, 2, 3, 4, 5)
        assert db.num_items == 5

    def test_explicit_universe_validates_items(self):
        with pytest.raises(ValueError):
            TransactionDatabase([[9]], universe=[1, 2])

    def test_transactions_are_frozensets(self):
        db = TransactionDatabase([[1, 1, 2]])
        assert db[0] == frozenset({1, 2})

    def test_empty_database(self):
        db = TransactionDatabase([])
        assert len(db) == 0
        assert db.universe == ()
        assert db.average_transaction_size() == 0.0

    def test_empty_transactions_are_kept(self):
        db = TransactionDatabase([[], [1]])
        assert len(db) == 2

    def test_equality(self):
        assert TransactionDatabase([[1]]) == TransactionDatabase([[1]])
        assert TransactionDatabase([[1]]) != TransactionDatabase([[2]])

    def test_repr(self):
        assert repr(TransactionDatabase([[1, 2]])) == (
            "TransactionDatabase(|D|=1, |I|=2)"
        )


class TestSupport:
    def test_support_count(self):
        db = TransactionDatabase([[1, 2, 3], [1, 2], [2, 3]])
        assert db.support_count([1, 2]) == 2
        assert db.support_count([1, 3]) == 1
        assert db.support_count([4]) == 0

    def test_support_of_empty_itemset(self):
        db = TransactionDatabase([[1], [2]])
        assert db.support_count([]) == 2

    def test_fractional_support(self):
        db = TransactionDatabase([[1, 2], [1], [2]])
        assert db.support([1]) == pytest.approx(2 / 3)

    def test_fractional_support_of_empty_db(self):
        assert TransactionDatabase([]).support([1]) == 0.0

    def test_absolute_support_rounds_up(self):
        db = TransactionDatabase([[1]] * 10)
        assert db.absolute_support(0.25) == 3
        assert db.absolute_support(0.3) == 3
        assert db.absolute_support(1.0) == 10

    def test_absolute_support_is_at_least_one(self):
        db = TransactionDatabase([[1]] * 10)
        assert db.absolute_support(0.0) == 1

    def test_absolute_support_validates_fraction(self):
        with pytest.raises(ValueError):
            TransactionDatabase([[1]]).absolute_support(1.5)

    def test_item_support_counts_cover_zero_items(self):
        db = TransactionDatabase([[1], [1, 2]], universe=[1, 2, 3])
        assert db.item_support_counts() == {1: 2, 2: 1, 3: 0}


class TestBitmaps:
    def test_bitmaps_encode_transaction_positions(self):
        db = TransactionDatabase([[1], [1, 2], [2]])
        bitmaps = db.item_bitmaps()
        assert bitmaps[1] == 0b011
        assert bitmaps[2] == 0b110

    def test_bitmaps_are_cached(self):
        db = TransactionDatabase([[1]])
        assert db.item_bitmaps() is db.item_bitmaps()

    def test_zero_support_items_have_empty_bitmaps(self):
        db = TransactionDatabase([[1]], universe=[1, 2])
        assert db.item_bitmaps()[2] == 0


class TestHelpers:
    def test_from_itemset_supports(self):
        db = TransactionDatabase.from_itemset_supports({(1, 2): 2, (3,): 1})
        assert len(db) == 3
        assert db.support_count([1, 2]) == 2

    def test_from_itemset_supports_rejects_negative(self):
        with pytest.raises(ValueError):
            TransactionDatabase.from_itemset_supports({(1,): -1})

    def test_restricted_to(self):
        db = TransactionDatabase([[1, 2, 3], [2, 4]])
        projected = db.restricted_to([2, 3])
        assert projected.universe == (2, 3)
        assert projected[0] == frozenset({2, 3})
        assert projected[1] == frozenset({2})

    def test_sample(self):
        db = TransactionDatabase([[1], [2], [3]])
        picked = db.sample([0, 2])
        assert len(picked) == 2
        assert picked[1] == frozenset({3})
        assert picked.universe == db.universe

    def test_occurring_items_excludes_zero_support(self):
        db = TransactionDatabase([[1], [3]], universe=[1, 2, 3])
        assert db.occurring_items() == (1, 3)

    def test_average_transaction_size(self):
        db = TransactionDatabase([[1, 2], [1, 2, 3, 4]])
        assert db.average_transaction_size() == 3.0
