"""The query-plane access log: v4 records, torn-line safety, slow ring."""

import json
import threading

import pytest

from repro.obs.requestlog import RequestLog, SlowQueryRing
from repro.obs.schema import (
    SCHEMA_VERSION,
    SchemaError,
    validate_request_log_file,
    validate_request_record,
)


def _record(i=1, **overrides):
    base = {
        "id": "req-1-%06d" % i,
        "op": "mine",
        "ok": True,
        "admitted": True,
        "seconds": 0.01,
    }
    base.update(overrides)
    return base


class TestRequestLog:
    def test_records_are_valid_v4(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with RequestLog(path) as log:
            log.log(_record(1, min_support=1.5, cost=42, warm=False,
                            queue_wait_s=0.001, passes=7, cache_hits=3,
                            cache_misses=4, result_size=10, eta_s=None))
            log.log(_record(2, ok=False, admitted=False, error="busy",
                            eta_s=1.25))
        assert validate_request_log_file(path) == 2
        with open(path) as handle:
            first = json.loads(handle.readline())
        assert first["v"] == SCHEMA_VERSION
        assert first["type"] == "request"
        assert first["id"] == "req-1-000001"

    def test_append_mode_continues_existing_log(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        with RequestLog(path) as log:
            log.log(_record(1))
        with RequestLog(path) as log:
            log.log(_record(2))
        assert validate_request_log_file(path) == 2

    def test_concurrent_writers_never_tear_lines(self, tmp_path):
        path = str(tmp_path / "access.jsonl")
        per_thread = 50
        with RequestLog(path) as log:
            def spam(worker):
                for i in range(per_thread):
                    log.log(_record(worker * per_thread + i))

            threads = [
                threading.Thread(target=spam, args=(w,)) for w in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        # every line parses and validates: no torn or interleaved writes
        assert validate_request_log_file(path) == 8 * per_thread
        assert log.records_written == 8 * per_thread

    def test_rejects_bad_alpha(self, tmp_path):
        with pytest.raises(ValueError):
            RequestLog(str(tmp_path / "a.jsonl"), alpha=0.0)


class TestSlowDetection:
    def test_first_query_over_floor_is_slow(self, tmp_path):
        log = RequestLog(
            str(tmp_path / "a.jsonl"), slow_dir=str(tmp_path / "slow"),
            slow_min_seconds=0.1,
        )
        with log:
            log.log(_record(1, seconds=0.5))
        assert log.slow_recorded == 1

    def test_outlier_vs_ewma_baseline(self, tmp_path):
        log = RequestLog(
            str(tmp_path / "a.jsonl"), slow_dir=str(tmp_path / "slow"),
            slow_min_seconds=0.02, slow_factor=4.0,
        )
        with log:
            for i in range(20):  # settle the EWMA near 10ms
                log.log(_record(i, seconds=0.01))
            assert log.slow_recorded == 0
            log.log(_record(99, seconds=0.10), spans=[{"name": "pass"}])
        assert log.slow_recorded == 1
        entries = log.ring.entries()
        assert entries[-1]["record"]["id"] == "req-1-000099"
        assert entries[-1]["spans"] == [{"name": "pass"}]

    def test_failures_and_rejections_never_feed_the_ring(self, tmp_path):
        log = RequestLog(
            str(tmp_path / "a.jsonl"), slow_dir=str(tmp_path / "slow"),
            slow_min_seconds=0.001,
        )
        with log:
            log.log(_record(1, ok=False, admitted=False, error="busy",
                            seconds=9.0))
            log.log(_record(2, ok=False, admitted=True, error="boom",
                            seconds=9.0))
        assert log.slow_recorded == 0


class TestSlowQueryRing:
    def test_ring_is_bounded_and_overwrites_oldest(self, tmp_path):
        ring = SlowQueryRing(str(tmp_path / "ring"), capacity=4)
        for i in range(10):
            ring.snapshot({"id": "req-%d" % i})
        entries = ring.entries()
        assert len(entries) == 4
        assert [doc["record"]["id"] for doc in entries] == [
            "req-6", "req-7", "req-8", "req-9"
        ]

    def test_rejects_bad_capacity(self, tmp_path):
        with pytest.raises(ValueError):
            SlowQueryRing(str(tmp_path / "ring"), capacity=0)


class TestSchemaV4:
    def test_validate_request_record_rejects_bad_shapes(self):
        good = dict(_record(1), v=SCHEMA_VERSION, type="request", ts=1.0)
        validate_request_record(good)
        for mutation in (
            {"v": 3},                     # requests need v4+
            {"type": "span"},
            {"op": "explode"},
            {"ok": "yes"},
            {"seconds": -1.0},
            {"id": ""},
            {"eta_s": "soon"},
            {"cache_hits": 1.5},
        ):
            bad = dict(good)
            bad.update(mutation)
            with pytest.raises(SchemaError):
                validate_request_record(bad)

    def test_nested_values_are_rejected(self):
        bad = dict(_record(1), v=SCHEMA_VERSION, type="request", ts=1.0)
        bad["extra"] = {"nested": True}
        with pytest.raises(SchemaError):
            validate_request_record(bad)
