"""Tests for database file I/O (repro.db.io)."""

import pytest

from repro.db import io
from repro.db.transaction_db import TransactionDatabase


def sample_db():
    return TransactionDatabase([[3, 1], [2], [1, 2, 3]])


class TestBasketFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "db.dat"
        io.save_basket(sample_db(), path)
        assert io.load_basket(path) == sample_db()

    def test_items_written_sorted(self, tmp_path):
        path = tmp_path / "db.dat"
        io.save_basket(sample_db(), path)
        assert path.read_text().splitlines()[0] == "1 3"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text("1 2\n\n3\n")
        db = io.load_basket(path)
        assert len(db) == 2

    def test_malformed_line_reports_line_number(self, tmp_path):
        path = tmp_path / "db.dat"
        path.write_text("1 2\nfoo bar\n")
        with pytest.raises(ValueError, match=":2:"):
            io.load_basket(path)


class TestCsvFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "db.csv"
        io.save_csv(sample_db(), path)
        assert io.load_csv(path) == sample_db()

    def test_malformed_cell(self, tmp_path):
        path = tmp_path / "db.csv"
        path.write_text("1,x\n")
        with pytest.raises(ValueError, match=":1:"):
            io.load_csv(path)

    def test_trailing_commas_tolerated(self, tmp_path):
        path = tmp_path / "db.csv"
        path.write_text("1,2,\n")
        assert io.load_csv(path)[0] == frozenset({1, 2})


class TestJsonFormat:
    def test_round_trip_preserves_universe(self, tmp_path):
        path = tmp_path / "db.json"
        db = TransactionDatabase([[1]], universe=range(1, 5))
        io.save_json(db, path)
        loaded = io.load_json(path)
        assert loaded == db
        assert loaded.universe == (1, 2, 3, 4)

    def test_rejects_non_object_payload(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="transactions"):
            io.load_json(path)


class TestDispatch:
    @pytest.mark.parametrize("name", ["db.dat", "db.basket", "db.txt",
                                      "db.csv", "db.json"])
    def test_save_load_by_extension(self, tmp_path, name):
        path = tmp_path / name
        io.save(sample_db(), path)
        loaded = io.load(path)
        assert list(loaded) == list(sample_db())

    def test_unknown_extension_raises_on_load(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            io.load(tmp_path / "db.parquet")

    def test_unknown_extension_raises_on_save(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            io.save(sample_db(), tmp_path / "db.parquet")

    def test_extension_dispatch_is_case_insensitive(self, tmp_path):
        path = tmp_path / "DB.DAT"
        io.save(sample_db(), path)
        assert len(io.load(path)) == 3
