"""Run every module's doctests — the documented examples must stay true."""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        "%d doctest failure(s) in %s" % (results.failed, module_name)
    )
