"""Tests for per-span resource attribution (``repro.obs.resources``)."""

import sys
import threading
import time
import tracemalloc

import pytest

from repro.obs.resources import (
    SamplingProfiler,
    SpanProfiler,
    fold_stack,
    rusage_snapshot,
)


class TestRusageSnapshot:
    def test_keys_and_types(self):
        snap = rusage_snapshot()
        assert set(snap) == {"cpu_user_s", "cpu_system_s", "maxrss_kb"}
        for value in snap.values():
            assert isinstance(value, float)
            assert value >= 0.0

    def test_cpu_is_monotone(self):
        before = rusage_snapshot()
        # burn a little CPU so user time visibly advances
        acc = 0
        for i in range(200_000):
            acc += i * i
        after = rusage_snapshot()
        assert after["cpu_user_s"] >= before["cpu_user_s"]
        assert after["maxrss_kb"] >= before["maxrss_kb"]


class TestSpanProfiler:
    def test_cpu_attribution_is_positive_and_ordered(self):
        profiler = SpanProfiler(trace_memory=False)
        outer = profiler.begin()
        inner = profiler.begin()
        acc = 0
        for i in range(300_000):
            acc += i
        inner_attrs = profiler.end(inner)
        outer_attrs = profiler.end(outer)
        assert inner_attrs["cpu_s"] >= 0.0
        # the outer frame contains the inner one, so it can't cost less
        assert outer_attrs["cpu_s"] >= inner_attrs["cpu_s"]
        assert "mem_peak_kb" not in inner_attrs

    def test_memory_attribution_sees_allocation(self):
        profiler = SpanProfiler().install()
        try:
            frame = profiler.begin()
            blob = bytearray(512 * 1024)  # ~512 kB held across end()
            attrs = profiler.end(frame)
            assert attrs["mem_peak_kb"] >= 400.0
            del blob
        finally:
            profiler.uninstall()

    def test_parent_peak_covers_child_peak(self):
        profiler = SpanProfiler().install()
        try:
            parent = profiler.begin()
            child = profiler.begin()
            blob = bytearray(512 * 1024)
            child_attrs = profiler.end(child)
            del blob
            parent_attrs = profiler.end(parent)
            # the child's absolute peak is propagated upward, so the
            # parent's window includes the freed allocation
            assert parent_attrs["mem_peak_kb"] >= child_attrs["mem_peak_kb"]
        finally:
            profiler.uninstall()

    def test_out_of_order_close_is_tolerated(self):
        profiler = SpanProfiler(trace_memory=False)
        outer = profiler.begin()
        profiler.begin()  # orphan left open by an unwind
        attrs = profiler.end(outer)
        assert attrs["cpu_s"] >= 0.0
        assert profiler._frames == []

    def test_install_is_idempotent_and_respects_existing_tracing(self):
        already = tracemalloc.is_tracing()
        if not already:
            tracemalloc.start()
        try:
            profiler = SpanProfiler().install()
            # somebody else started tracemalloc: uninstall must not stop it
            profiler.uninstall()
            assert tracemalloc.is_tracing()
        finally:
            if not already:
                tracemalloc.stop()

    def test_memory_inactive_without_install(self):
        profiler = SpanProfiler()
        if tracemalloc.is_tracing():
            pytest.skip("tracemalloc already tracing in this process")
        frame = profiler.begin()
        attrs = profiler.end(frame)
        assert "mem_peak_kb" not in attrs


class TestFoldStack:
    def test_root_first_semicolon_joined(self):
        frame = sys._getframe()
        folded = fold_stack(frame)
        parts = folded.split(";")
        assert parts  # non-empty
        # the leaf (this function) is last, the root first
        assert parts[-1].endswith(":test_root_first_semicolon_joined")


class TestSamplingProfiler:
    def test_samples_a_busy_thread(self):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            deadline = time.monotonic() + 0.2
            acc = 0
            while time.monotonic() < deadline:
                acc += 1
        assert profiler.total_samples > 0
        lines = profiler.folded_lines()
        assert lines
        stack, count = lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack

    def test_write_emits_folded_file(self, tmp_path):
        profiler = SamplingProfiler(interval=0.001)
        with profiler:
            time.sleep(0.05)
        out = tmp_path / "stacks.folded"
        profiler.write(str(out))
        content = out.read_text()
        if profiler.total_samples:
            assert content.strip()

    def test_counts_sorted_hottest_first(self):
        profiler = SamplingProfiler(interval=1.0)
        profiler.samples = {"a;b 1": 0}  # reset below
        profiler.samples = {"cold": 1, "hot": 5, "warm": 3}
        assert profiler.folded_lines() == ["hot 5", "warm 3", "cold 1"]

    def test_rejects_bad_interval_and_double_start(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)
        profiler = SamplingProfiler(interval=0.01)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_sampling_other_thread(self):
        target_ident = {}
        stop = threading.Event()

        def busy():
            target_ident["id"] = threading.get_ident()
            while not stop.is_set():
                pass

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        while "id" not in target_ident:
            time.sleep(0.001)
        profiler = SamplingProfiler(
            interval=0.001, thread_id=target_ident["id"]
        )
        with profiler:
            time.sleep(0.1)
        stop.set()
        worker.join(timeout=2.0)
        assert profiler.total_samples > 0
        assert any("busy" in line for line in profiler.folded_lines())
