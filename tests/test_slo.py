"""The rolling-window SLO ring: rotation, merging, windowed percentiles."""

import pytest

from repro.obs.slo import SloWindow


class FakeClock:
    """Injectable monotonic clock so rotation needs no sleeping."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock(1000.0)


@pytest.fixture
def window(clock):
    # 10-second window, 1-second buckets: easy arithmetic
    return SloWindow(window_seconds=10.0, buckets=10, clock=clock)


class TestObserve:
    def test_empty_snapshot_is_all_zeroes(self, window):
        snap = window.snapshot()
        assert snap["queries"] == 0
        assert snap["rejected"] == 0
        assert snap["qps"] == 0.0
        assert snap["latency"]["count"] == 0
        assert snap["latency"]["p99"] == 0.0

    def test_counts_and_moments(self, window, clock):
        for seconds in (0.1, 0.2, 0.3):
            window.observe(seconds=seconds)
        window.observe(rejected=True)
        window.observe(seconds=0.4, error=True)
        snap = window.snapshot()
        assert snap["queries"] == 4
        assert snap["rejected"] == 1
        assert snap["errors"] == 1
        assert snap["latency"]["count"] == 4
        assert snap["latency"]["min"] == pytest.approx(0.1)
        assert snap["latency"]["max"] == pytest.approx(0.4)
        assert snap["latency"]["total"] == pytest.approx(1.0)
        assert snap["rejection_rate"] == pytest.approx(1 / 5)

    def test_cache_hit_rate(self, window):
        window.observe(seconds=0.01, cache_hits=9, cache_misses=1)
        snap = window.snapshot()
        assert snap["cache_hits"] == 9
        assert snap["cache_misses"] == 1
        assert snap["cache_hit_rate"] == pytest.approx(0.9)

    def test_percentiles_over_merged_buckets(self, window, clock):
        # 100 observations spread over 5 buckets: percentile must be
        # computed over the concatenated window, not any single bucket
        for i in range(100):
            window.observe(seconds=(i + 1) / 100.0)
            if i % 20 == 19:
                clock.advance(1.0)
        latency = window.snapshot()["latency"]
        assert latency["p50"] == pytest.approx(0.50)
        assert latency["p95"] == pytest.approx(0.95)
        assert latency["p99"] == pytest.approx(0.99)


class TestRotation:
    def test_observations_age_out_of_the_window(self, window, clock):
        window.observe(seconds=5.0)
        assert window.snapshot()["queries"] == 1
        clock.advance(11.0)  # past the full window
        snap = window.snapshot()
        assert snap["queries"] == 0
        assert snap["latency"]["count"] == 0

    def test_slot_reuse_resets_stale_bucket(self, window, clock):
        window.observe(seconds=1.0)
        # exactly one full ring later the same slot is reused; the old
        # epoch's content must not leak into the new interval
        clock.advance(10.0)
        window.observe(seconds=2.0)
        snap = window.snapshot()
        assert snap["queries"] == 1
        assert snap["latency"]["max"] == pytest.approx(2.0)

    def test_partial_expiry_keeps_recent_buckets(self, window, clock):
        window.observe(seconds=1.0)  # t=1000, will expire
        clock.advance(6.0)
        window.observe(seconds=2.0)  # t=1006, stays
        clock.advance(6.0)  # now t=1012: first bucket is > 10s old
        snap = window.snapshot()
        assert snap["queries"] == 1
        assert snap["latency"]["min"] == pytest.approx(2.0)

    def test_qps_uses_covered_seconds_not_full_window(self, clock):
        # a young daemon must not divide by the whole window
        window = SloWindow(window_seconds=300.0, buckets=10, clock=clock)
        clock.advance(10.0)
        for _ in range(20):
            window.observe(seconds=0.01)
        snap = window.snapshot()
        assert snap["covered_seconds"] == pytest.approx(10.0)
        assert snap["qps"] == pytest.approx(2.0)

    def test_covered_seconds_caps_at_window(self, clock):
        window = SloWindow(window_seconds=10.0, buckets=10, clock=clock)
        clock.advance(500.0)
        window.observe(seconds=0.01)
        assert window.snapshot()["covered_seconds"] == pytest.approx(10.0)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SloWindow(window_seconds=0)
        with pytest.raises(ValueError):
            SloWindow(buckets=0)
