"""Smoke tests: every example script runs end-to-end and prints sanely.

The long-running knobs are shrunk via monkeypatching so the whole module
stays test-suite-fast; each example's full-size behaviour is exercised by
the benchmarks instead.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in ("quickstart", "market_basket", "stock_market",
                 "episodes", "minimal_keys"):
        sys.modules.pop(name, None)


def load(name):
    return importlib.import_module(name)


class TestQuickstart:
    def test_runs_and_reports_the_mfs(self, capsys):
        load("quickstart").main()
        output = capsys.readouterr().out
        assert "maximum frequent set" in output
        assert "bread" in output
        assert "frequent" in output


class TestMarketBasket:
    def test_runs_with_shrunk_workload(self, capsys, monkeypatch):
        module = load("market_basket")
        from dataclasses import replace

        monkeypatch.setattr(
            module, "CONFIG", replace(module.CONFIG, num_transactions=500)
        )
        module.main()
        output = capsys.readouterr().out
        assert "pincer-search" in output
        assert "apriori" in output
        assert "discovered top-down" in output


class TestStockMarket:
    def test_sectors_are_discovered(self, capsys, monkeypatch):
        module = load("stock_market")
        monkeypatch.setattr(module, "NUM_DAYS", 300)
        module.main()
        output = capsys.readouterr().out
        assert "co-moving groups" in output
        assert "tech" in output


class TestEpisodes:
    def test_planted_funnel_is_mined(self, capsys, monkeypatch):
        module = load("episodes")
        monkeypatch.setattr(
            module, "synthesise_event_stream",
            lambda length=1200, seed=3: module.synthesise_event_stream.__wrapped__(length, seed)
            if hasattr(module.synthesise_event_stream, "__wrapped__")
            else _short_stream(module),
        )
        module.main()
        output = capsys.readouterr().out
        assert "maximal episodes" in output
        assert "login" in output


def _short_stream(module):
    import random

    rng = random.Random(3)
    stream = []
    while len(stream) < 1200:
        template = rng.choice([t for t, _ in module.TEMPLATES])
        stream.extend(template)
    return stream[:1200]


class TestMinimalKeys:
    def test_keys_are_reported(self, capsys):
        module = load("minimal_keys")
        module.main()
        output = capsys.readouterr().out
        assert "3 minimal key" in output
        assert "employee_id" in output
        assert "email" in output
