"""End-to-end observability tests: miners, engines, CLI, and bench.

The acceptance contract of the observability layer: a traced run emits a
schema-valid JSONL span tree covering every pass, with per-pass candidate
totals exactly matching the run's :class:`~repro.core.stats.MiningStats`;
sharded runs report per-shard timings and a correct aggregated
``records_read``.
"""

import json
import logging
import os

import pytest

from repro.cli import main
from repro.core.pincer import PincerSearch
from repro.db import io
from repro.db.counting import get_counter
from repro.db.parallel import ShardedCounter
from repro.db.transaction_db import TransactionDatabase
from repro.obs import (
    capture,
    configure_logging,
    validate_metrics_file,
    validate_trace_file,
)

TRANSACTIONS = [
    [1, 2, 3, 4], [1, 2, 3], [1, 2, 3], [1, 2], [2, 3], [1, 3],
    [3, 4], [4, 5], [1, 2, 3, 5],
] * 5


def read_trace(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]


def spans_named(events, *names):
    return [
        event for event in events
        if event["type"] == "span" and event["name"] in names
    ]


class TestTraceMatchesStats:
    @pytest.mark.parametrize("adaptive", [True, False])
    def test_pass_spans_cover_every_pass(self, tmp_path, adaptive):
        db = TransactionDatabase(TRANSACTIONS)
        trace_path = str(tmp_path / "run.jsonl")
        obs = capture(trace_path=trace_path)
        result = PincerSearch(adaptive=adaptive).mine(db, 0.25, obs=obs)
        obs.finish()

        assert validate_trace_file(trace_path) > 0
        events = read_trace(trace_path)

        # exactly one root run span, carrying the run totals
        (run,) = spans_named(events, "run")
        assert run["parent"] is None
        assert run["attrs"]["passes"] == result.stats.num_passes
        assert run["attrs"]["total_candidates"] == result.stats.total_candidates
        assert run["attrs"]["records_read"] == result.stats.records_read
        assert run["attrs"]["mfs_size"] == len(result.mfs)

        # pass/sweep spans that counted anything match MiningStats exactly
        counted = [
            (event["attrs"]["pass_number"], event["attrs"]["total_candidates"])
            for event in spans_named(events, "pass", "sweep")
            if event["attrs"].get("total_candidates", 0) > 0
        ]
        expected = [
            (stats.pass_number, stats.total_candidates)
            for stats in result.stats.passes
        ]
        assert sorted(counted) == sorted(expected)
        assert len(counted) == result.stats.num_passes

        # every pass/sweep span hangs off the run span
        for event in spans_named(events, "pass", "sweep"):
            assert event["parent"] == run["span"]

    def test_engine_count_spans_nest_under_passes(self, tmp_path):
        db = TransactionDatabase(TRANSACTIONS)
        trace_path = str(tmp_path / "run.jsonl")
        obs = capture(trace_path=trace_path)
        PincerSearch(adaptive=True).mine(db, 0.25, obs=obs)
        obs.finish()
        events = read_trace(trace_path)
        by_id = {
            event["span"]: event
            for event in events if event["type"] == "span"
        }
        counts = spans_named(events, "count")
        assert counts
        for event in counts:
            assert by_id[event["parent"]]["name"] in ("pass", "sweep")
            assert event["attrs"]["batch_size"] > 0

    def test_metrics_agree_with_stats(self, tmp_path):
        db = TransactionDatabase(TRANSACTIONS)
        metrics_path = str(tmp_path / "m.json")
        obs = capture(metrics_path=metrics_path)
        result = PincerSearch(adaptive=True).mine(db, 0.25, obs=obs)
        obs.finish()
        validate_metrics_file(metrics_path)
        with open(metrics_path) as handle:
            document = json.load(handle)
        counters = document["counters"]
        assert counters["miner.runs"] == 1
        assert (
            counters["miner.candidates.bottom_up"]
            + counters["miner.candidates.mfcs"]
            == result.stats.total_candidates
        )
        assert counters["engine.records_read"] == result.stats.records_read
        assert document["gauges"]["miner.mfs_size"] == len(result.mfs)

    def test_mfcs_cover_query_counters_emitted(self, tmp_path):
        """The MFCS sub-linearity signal must survive to the metrics doc.

        ``mfcs.cover_node_visits / mfcs.cover_queries`` is the regression
        guard for the cover-index early exits: a full scan would pay
        roughly one visit per member item bitmap, so the mean visits per
        query must stay a small constant.
        """
        db = TransactionDatabase(TRANSACTIONS)
        metrics_path = str(tmp_path / "m.json")
        obs = capture(metrics_path=metrics_path)
        # pin the bitmask kernel: only the mask-native cover tracks the
        # query/visit counters this test guards
        PincerSearch(adaptive=True, kernel="bitmask").mine(db, 0.25, obs=obs)
        obs.finish()
        with open(metrics_path) as handle:
            document = json.load(handle)
        counters = document["counters"]
        assert counters["mfcs.cover_queries"] > 0
        assert counters["mfcs.cover_node_visits"] > 0
        mean_visits = (
            counters["mfcs.cover_node_visits"] / counters["mfcs.cover_queries"]
        )
        assert mean_visits <= 24

    def test_prefix_cache_metrics_emitted(self, tmp_path):
        db = TransactionDatabase(TRANSACTIONS)
        metrics_path = str(tmp_path / "m.json")
        obs = capture(metrics_path=metrics_path)
        PincerSearch(adaptive=True).mine(
            db, 0.25, counter=get_counter("bitmap"), obs=obs
        )
        obs.finish()
        with open(metrics_path) as handle:
            document = json.load(handle)
        assert document["counters"]["prefix_cache.misses"] > 0
        assert document["gauges"]["engine.prefix_cache.size"] > 0


class TestShardedObservability:
    def test_records_read_matches_serial_engine(self, tmp_path):
        db = TransactionDatabase(TRANSACTIONS)
        serial = PincerSearch(adaptive=True).mine(
            db, 0.25, counter=get_counter("bitmap")
        )
        metrics_path = str(tmp_path / "m.json")
        obs = capture(metrics_path=metrics_path)
        with ShardedCounter(num_shards=3) as counter:
            sharded = PincerSearch(adaptive=True).mine(
                db, 0.25, counter=counter, obs=obs
            )
            shard_seconds = list(counter.last_shard_seconds)
        obs.finish()

        assert sharded.mfs == serial.mfs
        # the satellite fix: per-shard reports aggregate to the exact
        # serial figure (len(db) records per pass, every pass)
        assert sharded.stats.records_read == serial.stats.records_read
        assert (
            sharded.stats.records_read
            == len(db) * sharded.stats.num_passes
        )
        assert len(shard_seconds) == 3
        assert all(seconds >= 0.0 for seconds in shard_seconds)

        validate_metrics_file(metrics_path)
        with open(metrics_path) as handle:
            document = json.load(handle)
        assert document["gauges"]["shard.count"] == 3
        worker_seconds = document["histograms"]["shard.worker_seconds"]
        assert worker_seconds["count"] == 3 * sharded.stats.num_passes
        assert document["gauges"]["shard.last_pass_max_seconds"] >= 0


class TestCliObservability:
    @pytest.fixture()
    def basket_file(self, tmp_path):
        path = tmp_path / "toy.dat"
        io.save(TransactionDatabase(TRANSACTIONS), path)
        return str(path)

    def test_mine_writes_schema_valid_trace_and_metrics(
        self, basket_file, tmp_path, capsys
    ):
        trace_path = str(tmp_path / "run.jsonl")
        metrics_path = str(tmp_path / "m.json")
        code = main([
            "mine", basket_file, "--min-support", "25",
            "--trace", trace_path, "--metrics-out", metrics_path,
        ])
        assert code == 0
        assert "maximum frequent set" in capsys.readouterr().out
        assert validate_trace_file(trace_path) > 0
        validate_metrics_file(metrics_path)
        events = read_trace(trace_path)
        names = {e["name"] for e in events if e["type"] == "span"}
        assert {"command", "run", "pass", "count"} <= names
        # the CLI's command span is the root of everything
        (command,) = spans_named(events, "command")
        assert command["parent"] is None
        (run,) = spans_named(events, "run")
        assert run["parent"] == command["span"]

    def test_mine_log_level_prints_run_summary(self, basket_file, capsys):
        try:
            code = main([
                "mine", basket_file, "--min-support", "25",
                "--log-level", "debug",
            ])
        finally:
            # --log-level configures the process-wide 'repro' logger;
            # quiet it again so later tests are unaffected
            configure_logging(logging.WARNING)
            logging.getLogger("repro").setLevel(logging.WARNING)
        assert code == 0
        assert "repro.core.pincer" in capsys.readouterr().err

    def test_bench_trace_has_sweep_and_cell_spans(self, tmp_path, capsys):
        trace_path = str(tmp_path / "bench.jsonl")
        code = main([
            "bench", "fig3-t5-i2", "--scale", "150",
            "--min-support", "8", "--trace", trace_path,
        ])
        assert code == 0
        assert "relative time" in capsys.readouterr().out
        assert validate_trace_file(trace_path) > 0
        events = read_trace(trace_path)
        (sweep,) = spans_named(events, "sweep")
        cells = spans_named(events, "cell")
        assert len(cells) == 2  # pincer-search and apriori
        for cell in cells:
            assert cell["parent"] == sweep["span"]
        miners = {cell["attrs"]["miner"] for cell in cells}
        assert miners == {"pincer-search", "apriori"}


class TestOverheadBenchmark:
    def test_run_overhead_benchmark_smoke(self, tmp_path):
        from repro.bench.obs_overhead import (
            run_overhead_benchmark,
            write_overhead_benchmark,
        )

        record = run_overhead_benchmark(
            database="T5.I2.D100K", min_support_percent=8.0,
            scale=300, repeats=1,
        )
        for key in (
            "count_seconds_raw", "count_seconds_guarded",
            "overhead_disabled_pct", "mine_seconds_disabled",
            "mine_seconds_enabled", "overhead_enabled_pct",
            "trace_events_per_run",
        ):
            assert key in record
        assert record["trace_events_per_run"] > 0
        out = tmp_path / "BENCH_obs.json"
        write_overhead_benchmark(str(out), record)
        assert json.loads(out.read_text())["benchmark"] == "obs-overhead"

    def test_committed_record_meets_disabled_budget(self):
        path = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks", "BENCH_obs.json",
        )
        with open(path) as handle:
            record = json.load(handle)
        assert record["overhead_disabled_pct"] < 2.0
