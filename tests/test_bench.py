"""Tests for the benchmark harness (repro.bench)."""

import pytest

from repro.algorithms.apriori import Apriori
from repro.bench.experiments import (
    ALL_EXPERIMENTS,
    FIGURE3,
    FIGURE4,
    ExperimentSpec,
    bench_scale,
    build_database,
    clear_database_cache,
)
from repro.bench.harness import (
    CellResult,
    PAPER_MINERS,
    bench_budget,
    format_rows,
    relative_time,
    run_cell,
    run_sweep,
)
from repro.core.pincer import PincerSearch
from repro.db.transaction_db import TransactionDatabase


def tiny_spec():
    return ExperimentSpec("tiny", "T5.I2.D100K", 20, (5.0,), "test spec")


class TestExperimentGrid:
    def test_grid_covers_both_figures(self):
        assert set(FIGURE3) == {"fig3-t5-i2", "fig3-t10-i4", "fig3-t20-i6"}
        assert set(FIGURE4) == {"fig4-t20-i6", "fig4-t20-i10", "fig4-t20-i15"}
        assert set(ALL_EXPERIMENTS) == set(FIGURE3) | set(FIGURE4)

    def test_figure3_is_scattered_figure4_concentrated(self):
        assert all(spec.num_patterns == 2000 for spec in FIGURE3.values())
        assert all(spec.num_patterns == 50 for spec in FIGURE4.values())

    def test_build_database_is_memoised(self):
        clear_database_cache()
        first = build_database(tiny_spec(), num_transactions=50)
        second = build_database(tiny_spec(), num_transactions=50)
        assert first is second
        clear_database_cache()
        third = build_database(tiny_spec(), num_transactions=50)
        assert third is not first

    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "123")
        assert bench_scale() == 123

    def test_scale_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0")
        with pytest.raises(ValueError):
            bench_scale()

    def test_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BUDGET", "7.5")
        assert bench_budget() == 7.5


class TestRunCell:
    def test_paper_miners_produce_two_rows(self):
        db = build_database(tiny_spec(), num_transactions=120)
        rows = run_cell(db, "tiny", 10.0)
        assert [row.algorithm for row in rows] == [
            "pincer-search", "apriori",
        ]
        assert all(row.database == "tiny" for row in rows)
        assert rows[0].mfs_size == rows[1].mfs_size

    def test_disagreement_raises(self):
        class LyingMiner(PincerSearch):
            def mine(self, db, min_support=None, **kwargs):
                result = super().mine(db, min_support, **kwargs)
                result.mfs = frozenset({(999,)})
                result.supports[(999,)] = 1
                return result

        db = TransactionDatabase([[1, 2]] * 5)
        miners = {
            "pincer-search": PincerSearch,
            "liar": LyingMiner,
        }
        with pytest.raises(AssertionError, match="disagrees"):
            run_cell(db, "x", 50.0, miners)

    def test_timeout_produces_dnf_row(self):
        db = TransactionDatabase([[1, 2, 3, 4, 5, 6]] * 6)
        miners = {"apriori": Apriori}
        rows = run_cell(db, "x", 50.0, miners, time_budget=0.0)
        assert len(rows) == 1
        assert rows[0].dnf
        assert rows[0].mfs_size == 0

    def test_sweep_covers_all_supports(self):
        db = build_database(tiny_spec(), num_transactions=120)
        rows = run_sweep(db, "tiny", (20.0, 10.0))
        assert {row.min_support_percent for row in rows} == {20.0, 10.0}
        assert len(rows) == 4


class TestReporting:
    def make_rows(self):
        shared = dict(database="db", total_candidates=10, mfs_size=3,
                      longest_maximal=2, maximal_found_in_mfcs=1)
        return [
            CellResult(min_support_percent=1.0, algorithm="pincer-search",
                       seconds=0.5, passes=3, candidates=5, **shared),
            CellResult(min_support_percent=1.0, algorithm="apriori",
                       seconds=2.0, passes=6, candidates=9, **shared),
        ]

    def test_relative_time(self):
        ratios = relative_time(self.make_rows())
        assert ratios == {1.0: pytest.approx(4.0)}

    def test_format_rows_contains_panels(self):
        text = format_rows(self.make_rows(), title="demo")
        assert "demo" in text
        assert "pincer-search" in text
        assert "apriori" in text
        assert "relative time" in text
        assert "4.00x" in text

    def test_format_rows_marks_dnf(self):
        rows = self.make_rows()
        rows[1] = CellResult(
            database="db", min_support_percent=1.0, algorithm="apriori",
            seconds=60.0, passes=9, candidates=100, total_candidates=100,
            mfs_size=0, longest_maximal=0, maximal_found_in_mfcs=0, dnf=True,
        )
        text = format_rows(rows)
        assert ">60.0" in text
        assert "DNF" in text
        assert ">120.00x" in text


class TestEndToEndSmallScale:
    def test_concentrated_panel_shape(self):
        # miniature fig4-style run: pincer must use fewer or equal passes
        spec = ExperimentSpec("mini", "T10.I6.D100K", 10, (8.0,), "")
        db = build_database(spec, num_transactions=400)
        rows = run_cell(db, "mini", 8.0)
        by_algo = {row.algorithm: row for row in rows}
        assert (
            by_algo["pincer-search"].passes <= by_algo["apriori"].passes + 1
        )
        assert by_algo["pincer-search"].mfs_size == by_algo["apriori"].mfs_size


class TestLatticeBench:
    def test_record_and_replay_agree_across_kernels(self):
        from repro.bench.lattice import record_events, replay_events
        from repro.core.kernel import make_kernel

        db = build_database(tiny_spec(), num_transactions=60)
        events = record_events(db, 10.0)
        assert events, "journal must not be empty"
        universe = sorted(db.universe)
        outputs = [
            replay_events(events, make_kernel(name, universe))
            for name in ("tuple", "bitmask")
        ]
        assert outputs[0] == outputs[1]

    def test_run_lattice_benchmark_smoke(self):
        from repro.bench.lattice import run_lattice_benchmark

        record = run_lattice_benchmark(
            database="T5.I2.D100K",
            supports_percent=(10.0,),
            scale=60,
            repeats=1,
        )
        assert record["benchmark"] == "lattice-kernels"
        assert set(record["totals"]) == {"tuple", "bitmask"}
        assert "speedup_lattice_total" in record
        cell = record["cells"][0]
        assert cell["min_support_percent"] == 10.0
        assert cell["events"] > 0

    def test_run_pass_benchmark_smoke(self):
        from repro.bench.lattice import run_pass_benchmark

        record = run_pass_benchmark(
            database="T5.I2.D100K", supports_percent=(10.0,), scale=60
        )
        cell = record["cells"][0]
        assert cell["identical_mfs"]
        assert cell["kernels"]["bitmask"]["passes"]
