"""Tests for the out-of-core partitioned miner and its counting plane.

The load-bearing property is *exactness under any budget*: the
partitioned miner must produce the byte-identical MFS of a
single-partition in-memory Pincer-Search run, whether partitions are
resident, evicted between passes, or counted through sub-budget word
windows — and whether or not a Toivonen sample seeds the local descents.
"""

import random

import pytest

from repro.algorithms.partitioned import (
    PartitionedPincerMiner,
    _local_threshold,
    partitioned_mine,
)
from repro.algorithms.sampling import SamplingMiner
from repro.core.pincer import PincerSearch, pincer_search
from repro.db.disk import DiskTransactionDatabase
from repro.db.outofcore import (
    BudgetExceededError,
    BudgetScheduler,
    HandleCounter,
    PartitionedCounter,
    handles_for_database,
)
from repro.db.transaction_db import TransactionDatabase


def _random_db(seed, num_rows=None, num_items=None):
    rng = random.Random(seed)
    num_rows = num_rows or rng.randint(40, 180)
    num_items = num_items or rng.randint(6, 14)
    density = rng.uniform(0.2, 0.55)
    return TransactionDatabase(
        [
            [item for item in range(num_items) if rng.random() < density]
            for _ in range(num_rows)
        ]
    )


def _snapshot_db(tmp_path, rows, num_partitions):
    basket = tmp_path / "db.basket"
    with open(basket, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(" ".join(str(item) for item in sorted(row)) + "\n")
    db = DiskTransactionDatabase(basket)
    snap = db.snapshot(num_partitions=num_partitions)
    return DiskTransactionDatabase(basket, snapshot=snap)


class TestDifferentialLadder:
    """partitioned ≡ pincer on randomized databases, all configurations."""

    @pytest.mark.parametrize("trial", range(8))
    def test_in_memory_matches_pincer(self, trial):
        db = _random_db(trial)
        threshold = random.Random(1000 + trial).randint(2, max(2, len(db) // 3))
        reference = pincer_search(db, min_count=threshold)
        for partitions in (1, 3):
            result = partitioned_mine(
                db, min_count=threshold, num_partitions=partitions
            )
            assert result.mfs == reference.mfs

    @pytest.mark.parametrize("trial", range(4))
    def test_sample_seeded_matches_pincer(self, trial):
        db = _random_db(50 + trial, num_rows=120)
        threshold = max(2, len(db) // 4)
        reference = pincer_search(db, min_count=threshold)
        result = partitioned_mine(
            db, min_count=threshold, num_partitions=2,
            sample_fraction=0.3, sample_seed=trial,
        )
        assert result.mfs == reference.mfs

    def test_snapshot_backed_matches_pincer_under_budget(self, tmp_path):
        rng = random.Random(9)
        rows = [
            [item for item in range(16) if rng.random() < 0.4]
            for _ in range(500)
        ]
        db = _snapshot_db(tmp_path, rows, num_partitions=4)
        reference = pincer_search(TransactionDatabase(rows), min_count=80)
        matrix_bytes = sum(
            handle.matrix_bytes
            for handle in handles_for_database(db, BudgetScheduler())
        )
        for budget in (None, matrix_bytes // 4, matrix_bytes // 10):
            result = partitioned_mine(db, min_count=80, memory_budget=budget)
            assert result.mfs == reference.mfs

    def test_supports_are_exact_global_counts(self):
        db = _random_db(77)
        result = partitioned_mine(db, min_count=max(2, len(db) // 5),
                                  num_partitions=3)
        for member in result.mfs:
            exact = sum(
                1 for transaction in db if set(member) <= transaction
            )
            assert result.supports[member] == exact


class TestBudgetAccounting:
    """The scheduler's books must balance and respect the cap."""

    def test_attach_detach_balances(self, tmp_path):
        rng = random.Random(3)
        rows = [
            [item for item in range(12) if rng.random() < 0.5]
            for _ in range(400)
        ]
        db = _snapshot_db(tmp_path, rows, num_partitions=4)
        counter = PartitionedCounter(memory_budget=None)
        miner = PartitionedPincerMiner()
        miner.mine(db, min_count=60, counter=counter)
        accounting = counter.scheduler.accounting()
        assert accounting["attaches"] >= 4  # every partition touched
        counter.close()
        assert counter.scheduler.mapped_bytes == 0
        assert counter.scheduler.mapped_partitions == 0
        assert (
            counter.scheduler.attaches == counter.scheduler.detaches
        )

    def test_budget_bounds_resident_bytes(self, tmp_path):
        rng = random.Random(4)
        rows = [
            [item for item in range(12) if rng.random() < 0.5]
            for _ in range(512)
        ]
        db = _snapshot_db(tmp_path, rows, num_partitions=4)
        handles = handles_for_database(db, BudgetScheduler())
        one_partition = handles[0].matrix_bytes
        counter = PartitionedCounter(memory_budget=one_partition)
        PartitionedPincerMiner().mine(db, min_count=70, counter=counter)
        accounting = counter.scheduler.accounting()
        assert accounting["max_mapped_bytes"] <= one_partition
        assert accounting["max_mapped_partitions"] == 1
        counter.close()

    def test_sub_partition_budget_counts_in_windows(self, tmp_path):
        rng = random.Random(5)
        rows = [
            [item for item in range(12) if rng.random() < 0.5]
            for _ in range(512)
        ]
        db = _snapshot_db(tmp_path, rows, num_partitions=2)
        handles = handles_for_database(db, BudgetScheduler())
        tiny = max(12 * 8, handles[0].matrix_bytes // 3)
        reference = pincer_search(TransactionDatabase(rows), min_count=70)
        counter = PartitionedCounter(memory_budget=tiny)
        result = PartitionedPincerMiner().mine(
            db, min_count=70, counter=counter
        )
        assert result.mfs == reference.mfs
        assert counter.scheduler.accounting()["max_mapped_bytes"] <= tiny
        counter.close()

    def test_scheduler_refuses_over_budget_attach(self):
        scheduler = BudgetScheduler(100)
        scheduler.attach(90)
        with pytest.raises(BudgetExceededError):
            scheduler.attach(20)
        scheduler.detach(90)
        assert scheduler.mapped_bytes == 0

    def test_handle_counter_bills_partition_rows(self):
        db = _random_db(11, num_rows=100)
        scheduler = BudgetScheduler()
        handles = handles_for_database(db, scheduler, num_partitions=2)
        counter = HandleCounter(handles[0])
        counter.count(db, [(0,)])
        assert counter.records_read == handles[0].num_rows
        assert counter.passes == 1
        counter.close()
        assert not handles[0].attached


class TestMinerContract:
    def test_exactly_two_logical_passes_when_no_descent(self):
        # concentrated data: every local maximal itemset is globally
        # frequent, so phase II classifies entirely from cache
        db = TransactionDatabase([[1, 2, 3, 4]] * 60 + [[5]] * 4)
        result = partitioned_mine(db, min_count=30, num_partitions=4)
        assert sorted(result.mfs) == [(1, 2, 3, 4)]
        assert result.stats.num_passes == 2

    def test_stats_record_partitions_and_budget(self):
        db = _random_db(21, num_rows=300)
        result = partitioned_mine(db, min_count=max(2, len(db) // 4),
                                  num_partitions=3)
        evidence = result.stats.engine_evidence
        assert evidence["partitions"] == 3
        assert evidence["engine"] == "partitioned"
        assert "max_mapped_bytes" in evidence
        assert result.stats.records_read >= 2 * len(db)

    def test_sample_seed_recorded_only_when_sampling(self):
        db = _random_db(22)
        threshold = max(2, len(db) // 4)
        plain = partitioned_mine(db, min_count=threshold)
        seeded = partitioned_mine(
            db, min_count=threshold, sample_fraction=0.25, sample_seed=41
        )
        assert plain.stats.sample_seed is None
        assert seeded.stats.sample_seed == 41

    def test_rejects_foreign_counter(self):
        from repro.db.counting import get_counter

        db = _random_db(23)
        with pytest.raises(ValueError, match="PartitionedCounter"):
            PartitionedPincerMiner().mine(
                db, min_count=5, counter=get_counter("bitmap")
            )

    def test_empty_result_when_nothing_frequent(self):
        db = TransactionDatabase([[1], [2], [3], [4]] * 4)
        result = partitioned_mine(db, min_count=15, num_partitions=2)
        assert result.mfs == frozenset()

    def test_local_threshold_is_proportional_ceiling(self):
        assert _local_threshold(10, 50, 100) == 5
        assert _local_threshold(10, 33, 100) == 4  # ceil(3.3)
        assert _local_threshold(1, 1, 1000) == 1  # floor of 1


class TestPartitionedEngine:
    """The ``partitioned`` engine as a plain counting engine."""

    def test_registered_and_counts_exactly(self):
        from repro.db.counting import available_engines, get_counter

        assert "partitioned" in available_engines()
        db = _random_db(31)
        engine = get_counter("partitioned")
        naive = get_counter("naive")
        batch = sorted({(item,) for row in db for item in row})
        assert engine.count(db, batch) == naive.count(db, batch)
        engine.close()

    def test_pincer_runs_on_partitioned_engine(self):
        db = _random_db(32)
        threshold = max(2, len(db) // 4)
        reference = pincer_search(db, min_count=threshold)
        result = PincerSearch(engine="partitioned").mine(
            db, min_count=threshold
        )
        assert result.mfs == reference.mfs


class TestSamplingDeterminism:
    def test_same_seed_same_result_stats(self):
        db = _random_db(41, num_rows=150)
        threshold = max(2, len(db) // 4)
        first = SamplingMiner(sample_fraction=0.3, seed=7).mine(
            db, min_count=threshold
        )
        second = SamplingMiner(sample_fraction=0.3, seed=7).mine(
            db, min_count=threshold
        )
        assert first.mfs == second.mfs
        assert first.supports == second.supports
        assert first.stats.sample_seed == 7
        assert second.stats.to_dict()["sample_seed"] == 7

    def test_external_rng_overrides_seed(self):
        db = _random_db(42, num_rows=150)
        threshold = max(2, len(db) // 4)
        rng = random.Random(123)
        miner = SamplingMiner(sample_fraction=0.3, seed=7, rng=rng)
        result = miner.mine(db, min_count=threshold)
        # exactness holds regardless of the draw; the stats must not
        # claim a seed the caller's rng did not use
        assert result.stats.sample_seed is None
        reference = pincer_search(db, min_count=threshold)
        assert result.mfs == reference.mfs

    def test_stats_roundtrip_preserves_sample_seed(self):
        from repro.core.stats import MiningStats

        stats = MiningStats(algorithm="sampling", sample_seed=99)
        assert MiningStats.from_dict(stats.to_dict()).sample_seed == 99
