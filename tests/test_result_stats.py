"""Tests for MiningResult / MiningStats / MiningTimeout."""

import pytest

from repro.core.result import MiningResult, MiningTimeout
from repro.core.stats import MiningStats, PassStats


def make_result(**overrides):
    defaults = dict(
        mfs=frozenset({(1, 2), (3,)}),
        supports={(1, 2): 3, (3,): 2, (1,): 4},
        num_transactions=5,
        min_support_count=2,
        min_support=0.4,
        algorithm="test",
    )
    defaults.update(overrides)
    return MiningResult(**defaults)


class TestMiningResult:
    def test_rejects_non_antichain_mfs(self):
        with pytest.raises(ValueError, match="antichain"):
            make_result(mfs=frozenset({(1,), (1, 2)}),
                        supports={(1,): 3, (1, 2): 2})

    def test_rejects_mfs_member_without_support(self):
        with pytest.raises(ValueError, match="supports"):
            make_result(supports={(1, 2): 3})

    def test_is_frequent_via_subset_of_mfs(self):
        result = make_result()
        assert result.is_frequent((1,))
        assert result.is_frequent((1, 2))
        assert result.is_frequent((3,))
        assert not result.is_frequent((1, 3))
        assert not result.is_frequent((4,))

    def test_empty_itemset_frequent_iff_mfs_nonempty(self):
        assert make_result().is_frequent(())
        empty = MiningResult(frozenset(), {}, 5, 2, 0.4, "t")
        assert not empty.is_frequent(())

    def test_is_maximal(self):
        result = make_result()
        assert result.is_maximal((1, 2))
        assert not result.is_maximal((1,))

    def test_frequent_itemsets_closure(self):
        assert make_result().frequent_itemsets() == {
            (1,), (2,), (1, 2), (3,),
        }

    def test_support_lookups(self):
        result = make_result()
        assert result.support_count((1, 2)) == 3
        assert result.support((1, 2)) == pytest.approx(0.6)
        assert result.support_count((9,)) is None
        assert result.support((9,)) is None

    def test_support_normalises_input_order(self):
        assert make_result().support_count([2, 1]) == 3

    def test_sorted_mfs(self):
        assert make_result().sorted_mfs() == [(3,), (1, 2)]

    def test_longest_maximal(self):
        assert make_result().longest_maximal() == (1, 2)
        empty = MiningResult(frozenset(), {}, 5, 2, 0.4, "t")
        assert empty.longest_maximal() is None

    def test_contains_superset_of(self):
        assert make_result().contains_superset_of((1,)) == [(1, 2)]

    def test_repr(self):
        assert "test" in repr(make_result())


class TestMiningStats:
    def test_new_pass_appends(self):
        stats = MiningStats(algorithm="x")
        first = stats.new_pass(1)
        first.bottom_up_candidates = 10
        assert stats.num_passes == 1
        assert stats.total_candidates == 10

    def test_candidate_totals_split_at_pass_two(self):
        stats = MiningStats()
        for pass_number, candidates in ((1, 100), (2, 200), (3, 30), (4, 4)):
            pass_stats = stats.new_pass(pass_number)
            pass_stats.bottom_up_candidates = candidates
        assert stats.total_candidates == 334
        assert stats.candidates_after_pass2 == 34

    def test_mfcs_candidates_included_in_totals(self):
        stats = MiningStats()
        pass_stats = stats.new_pass(3)
        pass_stats.bottom_up_candidates = 5
        pass_stats.mfcs_candidates = 7
        assert pass_stats.total_candidates == 12
        assert stats.candidates_after_pass2 == 12

    def test_total_maximal_found(self):
        stats = MiningStats()
        stats.new_pass(1).maximal_found = 2
        stats.new_pass(2).maximal_found = 3
        assert stats.total_maximal_found_in_mfcs == 5

    def test_summary_mentions_key_numbers(self):
        stats = MiningStats(algorithm="pincer-search")
        stats.new_pass(1).bottom_up_candidates = 9
        text = stats.summary()
        assert "pincer-search" in text
        assert "1 passes" in text
        assert "9 candidates" in text


class TestMiningTimeout:
    def test_carries_partial_stats(self):
        stats = MiningStats(algorithm="apriori")
        stats.new_pass(1)
        error = MiningTimeout("apriori", 12.5, stats)
        assert error.algorithm == "apriori"
        assert error.seconds == 12.5
        assert error.stats.num_passes == 1
        assert "12.5" in str(error)
