"""Tests for the related-work baselines: sampling and randomized MFS."""

import random

import pytest

from repro.algorithms.brute_force import brute_force_mfs
from repro.algorithms.randomized import RandomizedMFS, randomized_mfs
from repro.algorithms.sampling import SamplingMiner, sampling_mine
from repro.core.itemset import is_subset_of_any
from repro.core.lattice import is_antichain
from repro.db.transaction_db import TransactionDatabase


def toy_db():
    return TransactionDatabase(
        [[1, 2, 3]] * 5 + [[1, 2]] * 2 + [[4, 5]] * 3 + [[6]]
    )


class TestSamplingMiner:
    def test_exact_result_on_toy_database(self):
        result = sampling_mine(toy_db(), 0.25, sample_fraction=0.5, seed=1)
        assert set(result.mfs) == brute_force_mfs(toy_db(), 0.25)

    def test_full_sample_is_always_exact(self):
        result = sampling_mine(toy_db(), 0.3, sample_fraction=1.0)
        assert set(result.mfs) == brute_force_mfs(toy_db(), 0.3)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SamplingMiner(sample_fraction=0.0)
        with pytest.raises(ValueError):
            SamplingMiner(lowering=1.5)

    def test_randomised_exactness(self):
        # sampling + border verification (+ fallback) must be EXACT, not
        # approximate, on every input
        rng = random.Random(44)
        for trial in range(40):
            n = rng.randint(2, 8)
            db = TransactionDatabase(
                [
                    [i for i in range(1, n + 1) if rng.random() < 0.5]
                    for _ in range(rng.randint(4, 25))
                ],
                universe=range(1, n + 1),
            )
            minsup = rng.choice([0.2, 0.4, 0.6])
            result = sampling_mine(
                db, minsup, sample_fraction=0.3, lowering=0.7, seed=trial
            )
            assert set(result.mfs) == brute_force_mfs(db, minsup), trial

    def test_happy_path_uses_one_full_pass(self):
        # a strongly regular database: the sample cannot miss
        db = TransactionDatabase([[1, 2]] * 40)
        miner = SamplingMiner(sample_fraction=0.5, seed=3)
        from repro.db.counting import get_counter

        counter = get_counter("bitmap")
        result = miner.mine(db, 0.5, counter=counter)
        assert set(result.mfs) == {(1, 2)}
        assert counter.passes == 1  # verification pass only

    def test_supports_are_full_database_counts(self):
        result = sampling_mine(toy_db(), 0.25, sample_fraction=0.5, seed=2)
        for member in result.mfs:
            assert result.supports[member] == toy_db().support_count(member)


class TestRandomizedMFS:
    def test_soundness_every_output_is_maximal(self):
        rng = random.Random(9)
        for trial in range(25):
            n = rng.randint(2, 8)
            db = TransactionDatabase(
                [
                    [i for i in range(1, n + 1) if rng.random() < 0.5]
                    for _ in range(rng.randint(3, 20))
                ],
                universe=range(1, n + 1),
            )
            minsup = rng.choice([0.2, 0.4])
            truth = brute_force_mfs(db, minsup)
            result = randomized_mfs(db, minsup, seed=trial)
            # soundness: discovered ⊆ truth (each member truly maximal)
            assert set(result.mfs) <= truth, trial
            assert is_antichain(result.mfs)

    def test_complete_on_small_instances_with_many_restarts(self):
        db = toy_db()
        truth = brute_force_mfs(db, 0.25)
        result = RandomizedMFS(max_restarts=500, stall_limit=200, seed=1).mine(
            db, 0.25
        )
        assert set(result.mfs) == truth

    def test_single_pattern_database(self):
        db = TransactionDatabase([[1, 2, 3]] * 5)
        assert set(randomized_mfs(db, 0.5).mfs) == {(1, 2, 3)}

    def test_nothing_frequent(self):
        db = TransactionDatabase([[1], [2], [3]])
        assert randomized_mfs(db, 0.9).mfs == frozenset()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RandomizedMFS(max_restarts=0)

    def test_incompleteness_is_possible(self):
        # with a single restart the miner finds exactly one maximal set;
        # this pins down WHY the paper contrasts its deterministic
        # algorithm with the randomized approach
        db = toy_db()
        truth = brute_force_mfs(db, 0.25)
        assert len(truth) > 1
        result = RandomizedMFS(max_restarts=1, seed=0).mine(db, 0.25)
        assert len(result.mfs) == 1
        assert is_subset_of_any(next(iter(result.mfs)), truth)
