"""Unit tests for the CoverIndex (repro.core.cover)."""

import random

import pytest

from repro.core.cover import CoverIndex, as_cover
from repro.core.itemset import is_subset


class TestBasics:
    def test_empty_index_covers_nothing(self):
        index = CoverIndex()
        assert not index.covers((1,))
        assert not index.covers(())
        assert len(index) == 0
        assert not index

    def test_add_and_contains(self):
        index = CoverIndex()
        assert index.add((1, 2))
        assert (1, 2) in index
        assert (1,) not in index  # membership is exact, not subset

    def test_add_twice_returns_false(self):
        index = CoverIndex([(1, 2)])
        assert not index.add((1, 2))
        assert len(index) == 1

    def test_members_snapshot(self):
        index = CoverIndex([(1,), (2, 3)])
        assert sorted(index.members) == [(1,), (2, 3)]

    def test_iteration(self):
        index = CoverIndex([(1,), (2,)])
        assert sorted(index) == [(1,), (2,)]

    def test_repr_mentions_size(self):
        assert "2 members" in repr(CoverIndex([(1,), (2,)]))


class TestCoverQueries:
    def test_covers_subset(self):
        index = CoverIndex([(1, 2, 3)])
        assert index.covers((1, 3))
        assert index.covers((1, 2, 3))
        assert not index.covers((1, 4))

    def test_empty_probe_covered_when_nonempty(self):
        assert CoverIndex([(1,)]).covers(())

    def test_covers_strictly_excludes_equality(self):
        index = CoverIndex([(1, 2)])
        assert not index.covers_strictly((1, 2))
        assert index.covers_strictly((1,))

    def test_covers_strictly_with_proper_superset_present(self):
        index = CoverIndex([(1, 2), (1, 2, 3)])
        assert index.covers_strictly((1, 2))

    def test_supersets_of(self):
        index = CoverIndex([(1, 2, 3), (2, 3, 4), (1, 5)])
        assert sorted(index.supersets_of((2, 3))) == [(1, 2, 3), (2, 3, 4)]
        assert index.supersets_of((9,)) == []

    def test_unknown_item_short_circuits(self):
        index = CoverIndex([(1, 2)])
        assert not index.covers((1, 99))


class TestRemoval:
    def test_discard_removes_member(self):
        index = CoverIndex([(1, 2), (3, 4)])
        assert index.discard((1, 2))
        assert not index.covers((1, 2))
        assert index.covers((3, 4))
        assert len(index) == 1

    def test_discard_missing_returns_false(self):
        assert not CoverIndex([(1,)]).discard((2,))

    def test_slot_recycling_keeps_queries_correct(self):
        index = CoverIndex()
        for round_number in range(5):
            member = (round_number, round_number + 100)
            index.add(member)
            assert index.covers(member)
            index.discard(member)
            assert not index.covers(member)
        index.add((7, 8))
        assert index.covers((7,))
        assert len(index) == 1

    def test_stale_bits_do_not_resurrect(self):
        index = CoverIndex([(1, 2, 3)])
        index.discard((1, 2, 3))
        index.add((4, 5))  # recycles the slot
        assert not index.covers((1, 2))
        assert index.covers((4, 5))


class TestAgainstLinearScan:
    def test_randomised_equivalence(self):
        rng = random.Random(5)
        members = []
        index = CoverIndex()
        for step in range(300):
            action = rng.random()
            candidate = tuple(sorted(rng.sample(range(12), rng.randint(1, 5))))
            if action < 0.55:
                if candidate not in members:
                    members.append(candidate)
                index.add(candidate)
            elif action < 0.75 and members:
                victim = rng.choice(members)
                members.remove(victim)
                index.discard(victim)
            probe = tuple(sorted(rng.sample(range(12), rng.randint(0, 5))))
            expected = any(is_subset(probe, member) for member in members)
            assert index.covers(probe) == expected
            expected_supersets = sorted(
                member for member in members if is_subset(probe, member)
            )
            assert sorted(index.supersets_of(probe)) == expected_supersets


class TestAsCover:
    def test_wraps_iterables(self):
        cover = as_cover([(1, 2), (3,)])
        assert isinstance(cover, CoverIndex)
        assert cover.covers((1,))

    def test_passes_through_existing_index(self):
        index = CoverIndex([(1,)])
        assert as_cover(index) is index
