"""Tests for the scenario generators (repro.datagen.scenarios)."""

import pytest

from repro.apps.episodes import mine_episodes, sequence_to_events
from repro.apps.keys import Relation, minimal_keys
from repro.core.pincer import pincer_search
from repro.datagen.scenarios import (
    DEFAULT_SECTORS,
    EMPLOYEE_COLUMNS,
    EVENT_NAMES,
    clickstream,
    correlated_market,
    employees_table,
    sector_of,
)


class TestCorrelatedMarket:
    def test_shape(self):
        db = correlated_market(num_days=200)
        assert len(db) == 200
        assert db.universe == tuple(range(40))

    def test_determinism(self):
        assert correlated_market(num_days=50) == correlated_market(num_days=50)
        assert correlated_market(num_days=50) != correlated_market(
            num_days=50, seed=99
        )

    def test_sector_blocks_are_maximal_frequent_itemsets(self):
        db = correlated_market(num_days=800, seed=11)
        result = pincer_search(db, 0.25)
        discovered = {frozenset(member) for member in result.mfs if len(member) > 4}
        expected = {frozenset(members) for members in DEFAULT_SECTORS.values()}
        assert expected <= discovered

    def test_sector_of(self):
        assert sector_of(0) == "tech"
        assert sector_of(39) == "retail"
        assert sector_of(99) == "?"

    def test_custom_sectors(self):
        sectors = {"a": [0, 1], "b": [2, 3]}
        db = correlated_market(num_days=50, sectors=sectors)
        assert db.universe == (0, 1, 2, 3)


class TestClickstream:
    def test_length_and_vocabulary(self):
        stream = clickstream(length=500)
        assert len(stream) == 500
        assert all(event in EVENT_NAMES for event in stream)

    def test_determinism(self):
        assert clickstream(length=300) == clickstream(length=300)
        assert clickstream(length=300) != clickstream(length=300, seed=9)

    def test_purchase_funnel_is_a_frequent_episode(self):
        stream = clickstream(length=4000, noise_prob=0.1, keep_prob=0.97)
        episodes = mine_episodes(
            sequence_to_events(stream), width=8, min_support=0.1
        )
        longest = episodes[0]
        # the 6-step purchase funnel (or most of it) dominates
        assert len(longest) >= 5
        assert 0 in longest.event_types  # login present

    def test_custom_templates(self):
        stream = clickstream(
            length=200, templates=[((1, 2), 1.0)], noise_prob=0.0,
            keep_prob=1.0,
        )
        assert set(stream) == {1, 2}


class TestEmployeesTable:
    def test_shape_and_columns(self):
        rows, columns = employees_table(count=50)
        assert len(rows) == 50
        assert columns == EMPLOYEE_COLUMNS
        assert all(len(row) == len(columns) for row in rows)

    def test_known_minimal_keys(self):
        rows, columns = employees_table(count=120)
        relation = Relation(rows, column_names=columns)
        keys = minimal_keys(relation)
        singles = {key for key in keys if len(key) == 1}
        named = {relation.names(key)[0] for key in singles}
        assert named == {"employee_id", "email", "badge_no"}

    def test_determinism(self):
        assert employees_table(count=30) == employees_table(count=30)
