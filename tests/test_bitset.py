"""Unit tests for the interned item universe (repro.core.bitset)."""

from itertools import combinations
from math import comb

import pytest

from repro.core.bitset import (
    ItemUniverse,
    bits_of,
    candidate_upper_bound,
    popcount,
)


class TestPrimitives:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 300) | 1) == 2

    def test_bits_of_ascending(self):
        assert list(bits_of(0)) == []
        assert list(bits_of(0b10110)) == [1, 2, 4]


class TestItemUniverse:
    def test_bit_positions_follow_item_order(self):
        universe = ItemUniverse([30, 10, 20])
        assert universe.items == (10, 20, 30)
        assert universe.mask_of((10,)) == 0b001
        assert universe.mask_of((30,)) == 0b100
        assert universe.full_mask == 0b111
        assert len(universe) == 3
        assert 20 in universe and 40 not in universe

    def test_roundtrip_interning(self):
        universe = ItemUniverse(range(10))
        original = (2, 3, 7)
        mask = universe.mask_of(original)
        # both directions are interned: decode returns the same object
        assert universe.itemset_of(mask) is original
        assert universe.mask_of(original) == mask

    def test_decode_unseen_mask_is_canonical(self):
        universe = ItemUniverse([5, 1, 9])
        assert universe.itemset_of(0b111) == (1, 5, 9)

    def test_mask_of_raises_on_foreign(self):
        universe = ItemUniverse([1, 2])
        with pytest.raises(KeyError):
            universe.mask_of((1, 3))
        assert universe.try_mask_of((1, 3)) is None
        assert universe.try_mask_of((1, 2)) == 0b11

    def test_raw_mask_of_does_not_intern(self):
        universe = ItemUniverse(range(8))
        assert universe.raw_mask_of((1, 2)) == 0b110
        assert universe.raw_mask_of((1, 99)) is None
        # the throwaway probe must not have touched the decode cache
        assert universe.itemset_of(0b110) == (1, 2)

    def test_masks_of(self):
        universe = ItemUniverse(range(5))
        assert universe.masks_of([(0,), (0, 1)]) == [0b01, 0b11]


class TestCandidateUpperBound:
    def test_paper_values(self):
        assert candidate_upper_bound(4, 2) == 1
        assert candidate_upper_bound(6, 2) == 4
        assert candidate_upper_bound(0, 3) == 0
        assert candidate_upper_bound(10, 0) == 0

    def test_complete_level_is_tight(self):
        # L_k = all k-subsets of an m-item set attains the bound exactly
        for m, k in [(5, 2), (6, 3), (7, 2)]:
            assert candidate_upper_bound(comb(m, k), k) == comb(m, k + 1)

    def test_bound_dominates_apriori_gen(self):
        # brute force: for every 2-subset family of a 6-item universe of
        # a few random-ish sizes, the join+prune output cannot exceed it
        items = range(6)
        pairs = list(combinations(items, 2))
        for size in (3, 5, 8, 11, 15):
            family = set(pairs[:size])
            joined = set()
            for a, b in combinations(sorted(family), 2):
                union = tuple(sorted(set(a) | set(b)))
                if len(union) == 3 and all(
                    sub in family for sub in combinations(union, 2)
                ):
                    joined.add(union)
            assert len(joined) <= candidate_upper_bound(size, 2)

    def test_monotone_in_level_size(self):
        previous = 0
        for size in range(1, 40):
            bound = candidate_upper_bound(size, 3)
            assert bound >= previous
            previous = bound
