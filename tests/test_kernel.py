"""Differential tests: bitmask lattice kernel vs the tuple reference.

The two kernels must agree operation by operation on any input — the
bitmask kernel is a pure performance substitution.  These tests drive
them side by side on randomized lattice states and on the edge cases the
miners are known to produce.
"""

import random
from itertools import combinations

import pytest

from repro.core.cover import MaskCover
from repro.core.kernel import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    BitmaskKernel,
    TupleKernel,
    make_kernel,
    resolve_kernel_name,
)
from repro.core.mfcs import MFCS

UNIVERSE = list(range(1, 16))


def both_kernels():
    return TupleKernel(), BitmaskKernel(UNIVERSE)


def random_level(rng, k, count):
    """A random set of canonical k-itemsets over the universe."""
    level = set()
    for _ in range(count):
        level.add(tuple(sorted(rng.sample(UNIVERSE, k))))
    return level


class TestSelection:
    def test_make_kernel_names(self):
        for name in KERNEL_NAMES:
            assert make_kernel(name, UNIVERSE).name == name

    def test_default_is_bitmask(self):
        assert DEFAULT_KERNEL == "bitmask"
        assert resolve_kernel_name(None) in KERNEL_NAMES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_LATTICE_KERNEL", "tuple")
        assert resolve_kernel_name(None) == "tuple"
        assert resolve_kernel_name("auto") == "tuple"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_kernel("nope", UNIVERSE)

    def test_kernel_instances_pass_through(self):
        kernel = BitmaskKernel(UNIVERSE)
        assert make_kernel(kernel, UNIVERSE) is kernel


class TestDifferentialCandidateGeneration:
    def test_join_randomized(self):
        rng = random.Random(11)
        tuple_kernel, bitmask_kernel = both_kernels()
        for k in (1, 2, 3, 4):
            for _ in range(10):
                level = random_level(rng, k, rng.randint(0, 25))
                assert tuple_kernel.apriori_join(level) == (
                    bitmask_kernel.apriori_join(level)
                ), level

    def test_join_rejects_mixed_lengths(self):
        _, bitmask_kernel = both_kernels()
        with pytest.raises(ValueError):
            bitmask_kernel.apriori_join([(1,), (1, 2)])

    def test_prune_randomized(self):
        rng = random.Random(12)
        tuple_kernel, bitmask_kernel = both_kernels()
        for k in (2, 3, 4):
            for _ in range(10):
                level = random_level(rng, k, 20)
                candidates = random_level(rng, k + 1, 15)
                assert tuple_kernel.apriori_prune(candidates, level) == (
                    bitmask_kernel.apriori_prune(candidates, level)
                )

    def test_prune_with_foreign_items_falls_back(self):
        tuple_kernel, bitmask_kernel = both_kernels()
        level = {(1, 2), (1, 99), (2, 99)}  # 99 is outside the universe
        candidates = {(1, 2, 99), (1, 2, 3)}
        assert tuple_kernel.apriori_prune(candidates, level) == (
            bitmask_kernel.apriori_prune(candidates, level)
        )

    def test_recovery_randomized(self):
        rng = random.Random(13)
        tuple_kernel, bitmask_kernel = both_kernels()
        for k in (2, 3):
            for _ in range(10):
                level = sorted(random_level(rng, k, 12))
                mfs = sorted(random_level(rng, k + 2, 4))
                assert tuple_kernel.recovery(
                    level, tuple_kernel.make_cover(mfs), k
                ) == bitmask_kernel.recovery(
                    level, bitmask_kernel.make_cover(mfs), k
                )

    def test_pincer_prune_randomized(self):
        rng = random.Random(14)
        tuple_kernel, bitmask_kernel = both_kernels()
        for k in (2, 3):
            for _ in range(10):
                level = random_level(rng, k, 15)
                candidates = random_level(rng, k + 1, 12)
                mfs = random_level(rng, k + 2, 3)
                assert tuple_kernel.pincer_prune(
                    candidates, level, tuple_kernel.make_cover(mfs)
                ) == bitmask_kernel.pincer_prune(
                    candidates, level, bitmask_kernel.make_cover(mfs)
                )

    def test_generate_candidates_randomized(self):
        rng = random.Random(15)
        tuple_kernel, bitmask_kernel = both_kernels()
        for k in (1, 2, 3):
            for _ in range(10):
                level = random_level(rng, k, 12)
                mfs = random_level(rng, k + 2, 3)
                assert tuple_kernel.generate_candidates(
                    level, tuple_kernel.make_cover(mfs), k
                ) == bitmask_kernel.generate_candidates(
                    level, bitmask_kernel.make_cover(mfs), k
                )


class TestEdgeCases:
    def test_empty_mfs(self):
        tuple_kernel, bitmask_kernel = both_kernels()
        level = {(1, 2), (1, 3), (2, 3)}
        for kernel in (tuple_kernel, bitmask_kernel):
            result = kernel.generate_candidates(level, kernel.make_cover(), 2)
            assert result == {(1, 2, 3)}

    def test_pair_shortcut_matches_reference(self):
        # k == 1 with empty MFS takes the bitmask kernel's join-only
        # shortcut; the output must still equal the reference's full path
        tuple_kernel, bitmask_kernel = both_kernels()
        level = {(item,) for item in (1, 2, 3, 4)}
        assert tuple_kernel.generate_candidates(
            level, tuple_kernel.make_cover(), 1
        ) == bitmask_kernel.generate_candidates(
            level, bitmask_kernel.make_cover(), 1
        )

    def test_mfs_elements_shorter_than_k_plus_one(self):
        # pincer_prune drops candidates covered by the MFS; an MFS element
        # *shorter* than the candidates must never match
        tuple_kernel, bitmask_kernel = both_kernels()
        level = {(1, 2), (1, 3), (2, 3)}
        mfs = [(1,), (2, 3)]
        assert tuple_kernel.pincer_prune(
            {(1, 2, 3)}, level, tuple_kernel.make_cover(mfs)
        ) == bitmask_kernel.pincer_prune(
            {(1, 2, 3)}, level, bitmask_kernel.make_cover(mfs)
        )

    def test_empty_level(self):
        for kernel in both_kernels():
            assert kernel.apriori_join([]) == set()
            assert kernel.generate_candidates([], kernel.make_cover(), 3) == (
                set()
            )


class TestMaskNativeMFCS:
    def run_updates(self, kernel, infrequents, protected=None, **caps):
        mfcs = kernel.make_mfcs(UNIVERSE)
        cover = kernel.make_cover(protected or ())
        completed = mfcs.update(infrequents, protected=cover, **caps)
        return completed, sorted(mfcs)

    def test_mask_native_flag(self):
        _, bitmask_kernel = both_kernels()
        mfcs = bitmask_kernel.make_mfcs(UNIVERSE)
        assert mfcs._mask_native
        assert isinstance(mfcs._index, MaskCover)

    def test_paper_worked_example(self):
        for kernel in both_kernels():
            mfcs = MFCS([(1, 2, 3, 4, 5, 6)], kernel=kernel)
            mfcs.exclude((1, 6))
            mfcs.exclude((3, 6))
            assert sorted(mfcs) == [(1, 2, 3, 4, 5), (2, 4, 5, 6)]

    def test_multi_level_descent_randomized(self):
        # repeated updates with pairs, triples, and singletons — the
        # MFCS-gen recursion across passes — must agree exactly
        rng = random.Random(21)
        for trial in range(15):
            tuple_kernel, bitmask_kernel = both_kernels()
            batches = []
            for k in (2, 3, 1):
                batches.append(
                    sorted(random_level(rng, k, rng.randint(1, 8)))
                )
            states = []
            for kernel in (tuple_kernel, bitmask_kernel):
                mfcs = kernel.make_mfcs(UNIVERSE)
                for batch in batches:
                    assert mfcs.update(batch)
                states.append(sorted(mfcs))
            assert states[0] == states[1], batches

    def test_protected_mfs_respected(self):
        # amendment A4: replacements covered by the MFS are dropped,
        # identically under both kernels
        rng = random.Random(22)
        for trial in range(10):
            protected = sorted(random_level(rng, 4, 3))
            infrequents = sorted(random_level(rng, 2, 6))
            results = []
            for kernel in both_kernels():
                completed, state = self.run_updates(
                    kernel, infrequents, protected=protected
                )
                assert completed
                results.append(state)
            assert results[0] == results[1]

    def test_work_cap_abandons_identically(self):
        infrequents = [tuple(pair) for pair in combinations(range(1, 9), 2)]
        for kernel in both_kernels():
            completed, _ = self.run_updates(
                kernel, infrequents, work_cap=10
            )
            assert not completed

    def test_size_cap_abandons(self):
        infrequents = [(1, 2), (3, 4), (5, 6)]
        for kernel in both_kernels():
            completed, _ = self.run_updates(kernel, infrequents, size_cap=2)
            assert not completed

    def test_singleton_batches(self):
        for kernel in both_kernels():
            mfcs = kernel.make_mfcs(UNIVERSE)
            assert mfcs.update([(3,), (7,)])
            (element,) = sorted(mfcs)
            assert 3 not in element and 7 not in element


class TestSubLinearity:
    def test_cover_visits_stay_sublinear(self):
        """Regression guard on the MaskCover early-exit/verify machinery.

        A full inverted-index scan would examine one item bitmap per
        probe item (|probe| visits per query, ~|universe| in the worst
        case).  The observability counters must show the average probe
        stopping far earlier.
        """
        rng = random.Random(31)
        universe = list(range(1, 41))
        kernel = BitmaskKernel(universe)
        mfcs = kernel.make_mfcs(universe)
        batch = {
            tuple(sorted(rng.sample(universe, 2))) for _ in range(12)
        }
        assert mfcs.update(sorted(batch))
        queries = mfcs.cover_queries
        visits = mfcs.cover_node_visits
        assert queries > 0
        # elements here are ~38 items wide; sub-linearity means the mean
        # visit count per query stays a small constant, not O(width)
        assert visits / queries <= MaskCover._PROBE_CUTOFF + 8

    def test_counters_exposed_via_mfcs(self):
        kernel = BitmaskKernel(UNIVERSE)
        mfcs = kernel.make_mfcs(UNIVERSE)
        baseline = mfcs.cover_queries  # construction itself may probe
        assert mfcs.update([(1, 2)])
        assert mfcs.cover_queries > baseline
        assert mfcs.cover_node_visits > 0
