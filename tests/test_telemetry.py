"""Tests for the live telemetry plane (``repro.obs.telemetry`` + ``top``)."""

import json
import struct
import threading

import pytest

from repro.obs.instrument import Instrumentation, capture
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_trace_event
from repro.obs.telemetry import (
    COORDINATOR_SLOT,
    FORMAT_VERSION,
    HEADER_SIZE,
    SLOT_SIZE,
    STATE_COUNTING,
    STATE_IDLE,
    STATE_NAMES,
    STATE_STEALING,
    HeartbeatRecord,
    TelemetryCollector,
    TelemetryConfig,
    TelemetryReader,
    TelemetrySegment,
    TelemetryWriter,
    _SEQ,
    _slot_offset,
)
from repro.obs.top import TopConsole, format_frame
from repro.obs.top import main as top_main
from repro.obs.tracing import Tracer

PLANES = ("shm", "file")


def _plane_available(plane):
    if plane != "shm":
        return True
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover
        return False
    return True


@pytest.fixture(params=PLANES)
def plane(request):
    if not _plane_available(request.param):
        pytest.skip("multiprocessing.shared_memory unavailable")
    return request.param


class TestSegment:
    def test_round_trip_one_slot(self, plane):
        with TelemetrySegment(2, plane=plane) as segment:
            writer = segment.writer(1)
            writer.beat(
                state=STATE_COUNTING,
                pass_no=3,
                candidates_done=40,
                candidates_total=100,
                rows_done=500,
            )
            record = segment.reader().read(1)
            assert record is not None
            assert record.state == STATE_COUNTING
            assert record.state_name == "counting"
            assert record.pass_no == 3
            assert record.candidates_done == 40
            assert record.candidates_total == 100
            assert record.rows_done == 500
            assert record.heartbeats == 1
            assert record.mono_ts > 0.0
            assert record.rss_kb > 0

    def test_unwritten_slot_reads_none(self, plane):
        with TelemetrySegment(3, plane=plane) as segment:
            reader = segment.reader()
            assert reader.read(2) is None
            assert reader.workers() == [None, None, None]

    def test_advance_accumulates_until_beat(self, plane):
        with TelemetrySegment(1, plane=plane) as segment:
            writer = segment.writer(1)
            writer.advance(candidates_done=10, rows_done=5)
            writer.advance(candidates_done=10)
            assert segment.reader().read(1) is None  # nothing published yet
            writer.beat(state=STATE_IDLE)
            record = segment.reader().read(1)
            assert record.candidates_done == 20
            assert record.rows_done == 5

    def test_torn_write_reads_none(self, plane):
        with TelemetrySegment(1, plane=plane) as segment:
            writer = segment.writer(1)
            writer.beat(state=STATE_IDLE)
            # fake a writer dying mid-publish: odd sequence number
            _SEQ.pack_into(segment._buf, _slot_offset(1), 7)
            assert segment.reader().read(1) is None

    def test_worker_spec_attach_and_publish(self, plane):
        with TelemetrySegment(2, plane=plane) as segment:
            spec = segment.worker_spec(0)
            assert spec["slot"] == 1
            writer = TelemetryWriter.attach(spec)
            assert writer is not None
            writer.beat(state=STATE_STEALING, candidates_done=7)
            record = segment.reader().read(1)
            assert record.state_name == "stealing"
            assert record.candidates_done == 7
            writer.close()

    def test_attach_bad_spec_returns_none(self):
        assert TelemetryWriter.attach(None) is None
        assert TelemetryWriter.attach({}) is None
        assert (
            TelemetryWriter.attach(
                {"name": "no-such-segment-xyz", "plane": "file", "slot": 1}
            )
            is None
        )

    def test_external_reader_attach_by_name(self, plane):
        with TelemetrySegment(1, name="t-attach-%s" % plane, plane=plane) as segment:
            segment.writer(1).beat(state=STATE_COUNTING)
            reader = TelemetryReader.attach(segment.name, plane=plane)
            try:
                assert reader.num_slots == 2
                assert reader.read(1).state == STATE_COUNTING
            finally:
                reader.close()

    def test_reader_attach_missing_raises(self):
        with pytest.raises((FileNotFoundError, OSError)):
            TelemetryReader.attach("definitely-not-there", plane="file")

    def test_reader_rejects_corrupt_magic(self, plane):
        with TelemetrySegment(1, name="t-magic-%s" % plane, plane=plane) as segment:
            struct.pack_into("<8s", segment._buf, 0, b"NOTMAGIC")
            with pytest.raises(ValueError):
                TelemetryReader.attach(segment.name, plane=plane)

    def test_close_is_idempotent_and_unlinks(self, plane):
        segment = TelemetrySegment(2, name="t-close-%s" % plane, plane=plane)
        name = segment.name
        segment.close()
        segment.close()
        with pytest.raises((FileNotFoundError, OSError)):
            TelemetryReader.attach(name, plane=plane)

    def test_stale_shm_name_is_reclaimed(self):
        if not _plane_available("shm"):
            pytest.skip("multiprocessing.shared_memory unavailable")
        first = TelemetrySegment(1, name="t-stale", plane="shm")
        # simulate a crashed run: mapping alive, never closed/unlinked
        second = TelemetrySegment(3, name="t-stale", plane="shm")
        try:
            assert second.num_slots == 4
        finally:
            second.close()
            first.close()  # tolerates the reclaim having unlinked it

    def test_slot_geometry(self, plane):
        with TelemetrySegment(3, plane=plane) as segment:
            assert segment.num_slots == 4  # coordinator + 3 workers
            assert _slot_offset(0) == HEADER_SIZE
            assert _slot_offset(2) == HEADER_SIZE + 2 * SLOT_SIZE
            assert FORMAT_VERSION == 1

    def test_state_names_cover_all_states(self):
        assert set(STATE_NAMES.values()) == {
            "idle", "counting", "stealing", "done", "dead",
        }


class TestConfig:
    def test_from_option_none_and_false(self):
        assert TelemetryConfig.from_option(None) is None
        assert TelemetryConfig.from_option(False) is None

    def test_from_option_true_and_auto(self):
        assert TelemetryConfig.from_option(True).name is None
        assert TelemetryConfig.from_option("auto").name is None

    def test_from_option_name_and_passthrough(self):
        config = TelemetryConfig.from_option("myrun")
        assert config.name == "myrun"
        assert TelemetryConfig.from_option(config) is config

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(stall_factor=0)
        with pytest.raises(ValueError):
            TelemetryConfig(min_stall_seconds=-1)


class TestCollector:
    def test_rates_and_trace_event(self, tmp_path, plane):
        trace_path = str(tmp_path / "trace.jsonl")
        tracer = Tracer.to_path(trace_path)
        obs = Instrumentation(tracer=tracer, metrics=MetricsRegistry())
        with TelemetrySegment(1, plane=plane) as segment:
            writer = segment.writer(1)
            collector = TelemetryCollector(
                segment.reader(), obs=obs, interval=0.0
            )
            writer.beat(state=STATE_COUNTING, candidates_done=0, rows_done=0)
            first = collector.poll(force=True)
            assert first["workers"] == 1
            assert first["workers_active"] == 1
            writer.advance(candidates_done=500, rows_done=100)
            writer.beat()
            summary = collector.poll(force=True)
            assert summary["candidates_per_s"] > 0
            assert summary["rows_per_s"] > 0
            assert collector.last_summary is summary
        metrics = obs.metrics.to_dict()
        assert metrics["gauges"]["telemetry.workers_active"] == 1
        assert metrics["gauges"]["telemetry.candidates_per_s"] > 0
        tracer.close()
        events = [
            json.loads(line)
            for line in open(trace_path, encoding="utf-8")
        ]
        telemetry_events = [e for e in events if e["type"] == "telemetry"]
        assert len(telemetry_events) == 2
        for event in telemetry_events:
            validate_trace_event(event)

    def test_poll_is_throttled(self, plane):
        with TelemetrySegment(1, plane=plane) as segment:
            collector = TelemetryCollector(segment.reader(), interval=60.0)
            assert collector.poll() is not None
            assert collector.poll() is None  # within the interval
            assert collector.poll(force=True) is not None


class TestCaptureWiring:
    def test_capture_without_telemetry_is_noop(self):
        from repro.obs.instrument import NOOP

        assert capture() is NOOP

    def test_capture_with_telemetry_enables(self):
        obs = capture(telemetry="wired")
        assert obs.enabled
        assert obs.telemetry.name == "wired"
        obs.finish()

    def test_capture_bool_telemetry(self):
        obs = capture(telemetry=True)
        assert obs.telemetry is not None and obs.telemetry.name is None
        obs.finish()


class TestTopConsole:
    def test_render_live_segment(self, plane):
        with TelemetrySegment(2, name="t-top-%s" % plane, plane=plane) as segment:
            segment.writer(COORDINATOR_SLOT).beat(
                state=STATE_COUNTING, pass_no=2, candidates_total=100, bound=4000
            )
            w0 = segment.writer(1)
            w0.beat(state=STATE_COUNTING, candidates_done=0, rows_done=0)
            console = TopConsole(segment.reader())
            console.sample()
            w0.advance(candidates_done=50, rows_done=10)
            w0.beat()
            frame = console.render(segment.name)
            assert "pass 2" in frame
            assert "w0" in frame and "counting" in frame
            assert "(no heartbeat)" in frame  # worker 1 never published
            assert "bound 4000" in frame  # rate > 0 => ETA line present

    def test_format_frame_without_coordinator(self):
        frame = format_frame(
            "nameless",
            {"now": 0.0, "coordinator": None, "workers": [None], "rates": [0.0]},
        )
        assert "no heartbeat" in frame

    def test_main_one_frame(self, capsys, plane):
        with TelemetrySegment(1, name="t-main-%s" % plane, plane=plane) as segment:
            segment.writer(1).beat(state=STATE_IDLE, candidates_done=3)
            rc = top_main([segment.name, "--frames", "1", "--no-ansi"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "pincer top" in out
            assert segment.name in out

    def test_main_missing_segment(self, capsys):
        rc = top_main(["absent-segment", "--frames", "1", "--plane", "file"])
        assert rc == 1
        assert "cannot attach" in capsys.readouterr().err


class TestHeartbeatRecord:
    def test_to_dict_and_age(self, plane):
        with TelemetrySegment(1, plane=plane) as segment:
            segment.writer(1).beat(state=STATE_IDLE, candidates_done=9)
            record = segment.reader().read(1)
            as_dict = record.to_dict()
            assert as_dict["candidates_done"] == 9
            assert as_dict["state_name"] == "idle"
            assert record.age(record.mono_ts + 1.5) == pytest.approx(1.5)

    def test_record_is_a_plain_value(self):
        record = HeartbeatRecord(1, 2, (0,) * 15)
        assert record.slot == 1 and record.seq == 2


class TestSatellites:
    """Units for the smaller issue items that ride along this plane."""

    def test_histogram_percentile_nearest_rank(self):
        histogram = MetricsRegistry().histogram("t")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert histogram.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert histogram.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_histogram_percentile_empty_and_range(self):
        histogram = MetricsRegistry().histogram("t")
        assert histogram.percentile(50) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(101)

    def test_histogram_to_dict_percentile_keys(self):
        histogram = MetricsRegistry().histogram("t")
        histogram.observe(2.0)
        cells = histogram.to_dict()
        assert cells["p50"] == 2.0 and cells["p95"] == 2.0 and cells["p99"] == 2.0

    def test_registry_is_thread_safe_under_contention(self):
        registry = MetricsRegistry()
        errors = []

        def hammer(_):
            try:
                for index in range(300):
                    registry.counter("shared.counter").inc()
                    registry.gauge("gauge.%d" % (index % 7)).set(index)
                    registry.histogram("shared.histogram").observe(index)
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        document = registry.to_dict()
        assert document["counters"]["shared.counter"] == 8 * 300
        assert document["histograms"]["shared.histogram"]["count"] == 8 * 300

    def test_progress_drop_cap_counts_dropped_events(self):
        from repro.obs.progress import ProgressReporter

        registry = MetricsRegistry()
        tracer = Tracer.to_path("/dev/null", max_events=3)
        reporter = ProgressReporter(
            stream=None, tracer=tracer, metrics=registry
        )
        for pass_number in range(10):
            reporter.on_pass(
                pass_number, candidates=5, mfcs_size=1, candidate_bound=10
            )
        tracer.close()
        dropped = registry.to_dict()["counters"].get("progress.dropped_events", 0)
        assert dropped > 0

    def test_prometheus_exposition_has_percentile_gauges(self):
        from repro.obs.export import metrics_to_prometheus

        registry = MetricsRegistry()
        histogram = registry.histogram("pass.seconds")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        rendered = metrics_to_prometheus(registry.to_dict())
        for key in ("p50", "p95", "p99"):
            assert "repro_pass_seconds_%s" % key in rendered

    def test_perfetto_converts_telemetry_and_stalls(self):
        from repro.obs.export import trace_to_perfetto

        events = [
            {"v": 3, "type": "meta", "pid": 9, "producer": "t"},
            {
                "v": 3, "type": "telemetry", "ts": 10.0, "workers": 2,
                "workers_active": 2, "candidates_per_s": 123.0,
                "rows_per_s": 456.0,
            },
            {
                "v": 3, "type": "shard_stalled", "ts": 11.0, "shard": 1,
                "kind": "wedged", "age_s": 2.5, "threshold_s": 1.0, "pid": 4242,
            },
        ]
        for event in events[1:]:
            validate_trace_event(event)
        document = trace_to_perfetto(events)
        names = [e["name"] for e in document["traceEvents"]]
        assert "candidates_per_s" in names
        assert "rows_per_s" in names
        assert "workers_active" in names
        stall = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(stall) == 1
        assert "wedged" in stall[0]["name"]
        assert stall[0]["args"]["shard"] == 1
