"""Tests for the heartbeat progress reporter (``repro.obs.progress``)."""

import io
import json

from repro.obs.progress import NOOP_PROGRESS, ProgressReporter
from repro.obs.schema import validate_trace_event, validate_trace_file
from repro.obs.tracing import Tracer


class TestNoopProgress:
    def test_disabled_and_free(self):
        assert NOOP_PROGRESS.enabled is False
        NOOP_PROGRESS.start_run(algorithm="x")
        NOOP_PROGRESS.on_pass(k=1, candidates=2)
        NOOP_PROGRESS.on_abandon(k=1)
        NOOP_PROGRESS.on_finish()


class TestProgressReporter:
    def test_events_validate_against_schema(self):
        reporter = ProgressReporter(stream=None)
        reporter.start_run(
            algorithm="pincer", num_transactions=100, min_support_count=5
        )
        reporter.on_pass(
            k=1, candidates=10, mfcs_size=1, candidate_bound=45, mfs_size=0
        )
        reporter.on_abandon(k=2, reason="ratio-cap")
        reporter.on_finish(mfs_size=7, passes=3, seconds=0.5)
        assert [e["phase"] for e in reporter.events] == [
            "start", "pass", "abandon", "finish",
        ]
        for event in reporter.events:
            assert event["type"] == "progress"
            validate_trace_event(event)

    def test_eta_is_bound_over_rate(self):
        reporter = ProgressReporter(stream=None)
        reporter.start_run(algorithm="pincer")
        reporter._started -= 2.0  # pretend 2 seconds elapsed
        reporter.on_pass(k=1, candidates=100, mfcs_size=0, candidate_bound=50)
        event = reporter.events[-1]
        rate = event["rate_per_s"]
        assert rate > 0
        # bound / (candidates per second) within rounding
        assert abs(event["eta_next_pass_s"] - 50 / rate) < 0.1
        assert event["candidates_total"] == 100

    def test_candidates_accumulate_across_passes(self):
        reporter = ProgressReporter(stream=None)
        reporter.on_pass(k=1, candidates=10, mfcs_size=0, candidate_bound=0)
        reporter.on_pass(k=2, candidates=5, mfcs_size=0, candidate_bound=0)
        assert reporter.events[-1]["candidates_total"] == 15

    def test_human_lines_go_to_stream(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.start_run(algorithm="pincer", num_transactions=10)
        reporter.on_pass(k=1, candidates=3, mfcs_size=2, candidate_bound=1)
        reporter.on_finish(mfs_size=1, passes=1, seconds=0.1)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("[pincer] mining 10 transactions")
        assert "|MFCS|=2" in lines[1]
        assert "done: |MFS|=1" in lines[2]

    def test_sweep_phase_in_line_and_event(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream=stream)
        reporter.on_pass(
            k=4, candidates=2, mfcs_size=0, candidate_bound=3, phase="sweep"
        )
        assert reporter.events[-1]["phase"] == "sweep"
        assert "sweep 4" in stream.getvalue()

    def test_events_sink_receives_jsonl(self):
        sink = io.StringIO()
        reporter = ProgressReporter(stream=None, events_sink=sink)
        reporter.on_pass(k=1, candidates=1, mfcs_size=0, candidate_bound=0)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert len(lines) == 1
        assert lines[0]["type"] == "progress"
        validate_trace_event(lines[0])

    def test_tracer_mirror_lands_in_valid_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path))
        reporter = ProgressReporter(stream=None, tracer=tracer)
        with tracer.span("run"):
            reporter.on_pass(k=1, candidates=4, mfcs_size=1, candidate_bound=6)
        tracer.close()
        validate_trace_file(str(path))
        events = [json.loads(line) for line in path.read_text().splitlines()]
        progress = [e for e in events if e["type"] == "progress"]
        assert len(progress) == 1
        assert progress[0]["candidates"] == 4

    def test_abandon_carries_reason(self):
        reporter = ProgressReporter(stream=None)
        reporter.on_abandon(k=3, reason="futility")
        event = reporter.events[-1]
        assert event["phase"] == "abandon"
        assert event["reason"] == "futility"

    def test_zero_elapsed_does_not_divide_by_zero(self):
        reporter = ProgressReporter(stream=None)
        reporter._started = float("inf")  # elapsed <= 0
        reporter.on_pass(k=1, candidates=5, mfcs_size=0, candidate_bound=10)
        assert reporter.events[-1]["eta_next_pass_s"] == 0.0
