"""Tests for the time-budget / deadline machinery."""

import time

import pytest

from repro.algorithms.apriori import Apriori
from repro.core.candidates import apriori_join
from repro.core.result import MiningTimeout
from repro.db.counting import CountingDeadline, available_engines, get_counter
from repro.db.transaction_db import TransactionDatabase


def dense_db(num_items=14, copies=6):
    return TransactionDatabase([list(range(num_items))] * copies)


class TestEngineDeadline:
    @pytest.mark.parametrize("engine", available_engines())
    def test_expired_deadline_aborts_pass(self, engine):
        counter = get_counter(engine)
        try:
            counter.deadline = time.perf_counter() - 1.0
            with pytest.raises(CountingDeadline):
                counter.count(dense_db(), [(0,), (1,)])
        finally:
            close = getattr(counter, "close", None)
            if close is not None:
                close()

    @pytest.mark.parametrize("engine", available_engines())
    def test_future_deadline_lets_counting_finish(self, engine):
        counter = get_counter(engine)
        try:
            counter.deadline = time.perf_counter() + 60.0
            counts = counter.count(dense_db(), [(0,), (0, 1)])
            assert counts == {(0,): 6, (0, 1): 6}
        finally:
            close = getattr(counter, "close", None)
            if close is not None:
                close()

    def test_no_deadline_by_default(self):
        counter = get_counter("bitmap")
        assert counter.deadline is None
        assert counter.count(dense_db(), [(0,)]) == {(0,): 6}


class TestJoinDeadline:
    def test_expired_deadline_aborts_join(self):
        level = [(item,) for item in range(500)]
        with pytest.raises(CountingDeadline):
            apriori_join(level, deadline=time.perf_counter() - 1.0)

    def test_future_deadline_is_harmless(self):
        result = apriori_join(
            [(1, 2), (1, 3)], deadline=time.perf_counter() + 60.0
        )
        assert result == {(1, 2, 3)}


class TestAprioriBudgetEndToEnd:
    def test_zero_budget_times_out_before_any_pass(self):
        with pytest.raises(MiningTimeout) as excinfo:
            Apriori().mine(dense_db(), 0.5, time_budget=0.0)
        assert excinfo.value.stats.num_passes == 0

    def test_mid_run_timeout_reports_partial_passes(self):
        # enough budget for the cheap early passes, not for the blow-up
        db = dense_db(num_items=18, copies=4)
        budget = 0.05
        with pytest.raises(MiningTimeout) as excinfo:
            Apriori().mine(db, 0.5, time_budget=budget)
        timeout = excinfo.value
        assert timeout.stats.num_passes >= 0
        # the deadline machinery bounds the overshoot to small multiples
        assert timeout.seconds < 5.0

    def test_deadline_cleared_after_successful_run(self):
        counter = get_counter("bitmap")
        Apriori().mine(
            TransactionDatabase([[1, 2]] * 4), 0.5,
            counter=counter, time_budget=60.0,
        )
        assert counter.deadline is None

    def test_budgeted_and_unbudgeted_agree_when_finishing(self):
        db = TransactionDatabase([[1, 2, 3]] * 5 + [[4]] * 2)
        with_budget = Apriori().mine(db, 0.3, time_budget=60.0)
        without = Apriori().mine(db, 0.3)
        assert with_budget.mfs == without.mfs
