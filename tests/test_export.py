"""Tests for the Perfetto and Prometheus exporters (``repro.obs.export``)."""

import io
import json

import pytest

from repro.obs.export import (
    load_trace_events,
    main as export_main,
    metrics_to_prometheus,
    trace_to_perfetto,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _recorded_trace(tmp_path, max_events=None):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer.to_path(str(path), producer="export-test", max_events=max_events)
    with tracer.span("run", algorithm="pincer"):
        with tracer.span("pass", k=1):
            pass
        with tracer.span("pass", k=2):
            pass
    tracer.emit_event("progress", phase="pass", k=2, candidates=7, mfcs_size=3)
    tracer.close()
    return str(path)


class TestPerfetto:
    def test_spans_become_complete_events(self, tmp_path):
        doc = trace_to_perfetto(load_trace_events(_recorded_trace(tmp_path)))
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "export-test"
        spans = [e for e in events if e["ph"] == "X"]
        assert sorted(e["name"] for e in spans) == ["pass", "pass", "run"]
        for event in spans:
            assert event["ts"] >= 0.0  # relative to the trace origin
            assert event["dur"] >= 0.0
            assert event["pid"] == meta[0]["pid"]

    def test_span_attrs_ride_in_args(self, tmp_path):
        doc = trace_to_perfetto(load_trace_events(_recorded_trace(tmp_path)))
        run = [e for e in doc["traceEvents"] if e.get("name") == "run"][0]
        assert run["args"]["algorithm"] == "pincer"

    def test_progress_events_become_counters(self, tmp_path):
        doc = trace_to_perfetto(load_trace_events(_recorded_trace(tmp_path)))
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"candidates", "mfcs_size"}
        by_name = {e["name"]: e for e in counters}
        assert by_name["candidates"]["args"] == {"candidates": 7}

    def test_truncated_marker_becomes_instant(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer.to_path(str(path), max_events=2)
        for k in range(5):
            with tracer.span("pass", k=k):
                pass
        tracer.close()
        doc = trace_to_perfetto(load_trace_events(str(path)))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert "dropped" in instants[0]["name"]

    def test_document_is_json_serialisable(self, tmp_path):
        doc = trace_to_perfetto(load_trace_events(_recorded_trace(tmp_path)))
        round_tripped = json.loads(json.dumps(doc))
        assert round_tripped["displayTimeUnit"] == "ms"


class TestPrometheus:
    def _document(self):
        registry = MetricsRegistry()
        registry.counter("miner.runs").inc(3)
        registry.gauge("mfcs.size").set(41)
        hist = registry.histogram("engine.batch_size")
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        return registry.to_dict()

    def test_counter_gauge_summary_rendering(self):
        text = metrics_to_prometheus(self._document())
        assert "# TYPE repro_miner_runs_total counter" in text
        assert "repro_miner_runs_total 3" in text
        assert "repro_mfcs_size 41" in text
        assert "repro_engine_batch_size_count 3" in text
        assert "repro_engine_batch_size_sum 12" in text
        assert "repro_engine_batch_size_min 2" in text
        assert "repro_engine_batch_size_max 6" in text
        assert "repro_engine_batch_size_stddev" in text
        assert text.endswith("\n")

    def test_names_are_sanitised(self):
        text = metrics_to_prometheus(
            {"counters": {"weird-name.with:chars": 1}, "gauges": {}, "histograms": {}}
        )
        assert "repro_weird_name_with_chars_total 1" in text

    def test_prefix_override(self):
        text = metrics_to_prometheus(
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            prefix="pincer_",
        )
        assert "pincer_x_total 1" in text


class TestExportCli:
    def test_perfetto_roundtrip_via_cli(self, tmp_path, capsys):
        trace = _recorded_trace(tmp_path)
        out = tmp_path / "perf.json"
        rc = export_main([trace, "--format", "perfetto", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_prometheus_to_stdout(self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        metrics = tmp_path / "metrics.json"
        registry.write(str(metrics))
        rc = export_main([str(metrics), "--format", "prometheus"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "repro_runs_total 1" in captured.out

    def test_missing_input_fails_cleanly(self, tmp_path, capsys):
        rc = export_main(
            [str(tmp_path / "nope.jsonl"), "--format", "perfetto"]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert "export failed" in captured.err
