"""Tests for the generalized predicate miner (repro.core.predicate)."""

import random

import pytest

from repro.core.predicate import (
    PredicatePincer,
    brute_force_maximal_satisfying_sets,
    maximal_satisfying_sets,
)
from repro.core.lattice import is_antichain


class TestBasics:
    def test_weight_cap_predicate(self):
        result = maximal_satisfying_sets(
            range(1, 5), lambda s: sum(s) <= 4
        )
        assert result == {(4,), (1, 2), (1, 3)}

    def test_always_true_gives_universe(self):
        assert maximal_satisfying_sets(range(1, 5), lambda s: True) == {
            (1, 2, 3, 4)
        }

    def test_always_false_gives_empty(self):
        assert maximal_satisfying_sets(range(1, 5), lambda s: False) == set()

    def test_empty_universe(self):
        assert maximal_satisfying_sets([], lambda s: True) == set()

    def test_cardinality_cap(self):
        result = maximal_satisfying_sets(range(1, 5), lambda s: len(s) <= 2)
        assert result == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
        }

    def test_result_is_antichain(self):
        result = maximal_satisfying_sets(
            range(1, 7), lambda s: sum(s) <= 7
        )
        assert is_antichain(result)


class TestOracleAccounting:
    def test_memoisation_no_duplicate_calls(self):
        asked = []

        def predicate(candidate):
            asked.append(candidate)
            return sum(candidate) <= 4

        PredicatePincer(predicate).mine(range(1, 5))
        assert len(asked) == len(set(asked))

    def test_stats_report_calls_and_rounds(self):
        miner = PredicatePincer(lambda s: len(s) <= 1)
        result, stats = miner.mine(range(1, 6))
        assert stats.oracle_calls > 0
        assert stats.rounds >= 1
        assert result == {(i,) for i in range(1, 6)}

    def test_top_down_shortcut_counts(self):
        miner = PredicatePincer(lambda s: True)
        result, stats = miner.mine(range(1, 9))
        # the universe element satisfies immediately: one round
        assert stats.rounds == 1
        assert stats.maximal_found_top_down == 1


class TestAntimonotoneChecking:
    def test_violation_detected(self):
        # "sum is even" is not anti-monotone
        with pytest.raises(ValueError, match="not anti-monotone"):
            maximal_satisfying_sets(
                range(1, 5), lambda s: sum(s) % 2 == 0
            )

    def test_check_can_be_disabled(self):
        # with checking off the result is undefined but must not raise
        maximal_satisfying_sets(
            range(1, 5), lambda s: sum(s) % 2 == 0,
            check_antimonotone=False,
        )


class TestAgainstBruteForce:
    def test_randomised_downward_closed_families(self):
        rng = random.Random(31)
        for trial in range(60):
            n = rng.randint(1, 8)
            family = [
                frozenset(rng.sample(range(1, n + 1), rng.randint(0, n)))
                for _ in range(rng.randint(0, 5))
            ]

            def predicate(candidate, family=family):
                return any(set(candidate) <= member for member in family)

            assert maximal_satisfying_sets(
                range(1, n + 1), predicate
            ) == brute_force_maximal_satisfying_sets(
                range(1, n + 1), predicate
            )

    def test_randomised_weight_thresholds(self):
        rng = random.Random(32)
        for trial in range(60):
            n = rng.randint(1, 8)
            weights = {item: rng.random() for item in range(1, n + 1)}
            cap = rng.random() * n / 2

            def predicate(candidate, weights=weights, cap=cap):
                return sum(weights[item] for item in candidate) <= cap

            assert maximal_satisfying_sets(
                range(1, n + 1), predicate
            ) == brute_force_maximal_satisfying_sets(
                range(1, n + 1), predicate
            )
