"""Tests for the zero-copy shared-memory counting plane (``repro.db.shm``)."""

import gc
import os
import signal
import time

import pytest

from repro.db.base import EngineClosedError
from repro.db.counting import get_counter
from repro.db.transaction_db import TransactionDatabase
from repro.db.vertical import HAVE_NUMPY

shm_mod = pytest.importorskip("repro.db.shm")
ShmShardedCounter = shm_mod.ShmShardedCounter

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="shm plane needs NumPy")

try:
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None

# enough rows that word-aligned slices are non-trivial (> 64 per worker)
TRANSACTIONS = [[1, 2, 3], [1, 2], [2, 3], [3], [1], [2], [4, 5]] * 60
DB = TransactionDatabase(TRANSACTIONS)
CANDIDATES = [(), (1,), (2,), (3,), (1, 2), (2, 3), (1, 2, 3), (4, 5), (9,)]
EXPECTED = get_counter("naive").count(DB, CANDIDATES)

# a batch wide enough to force candidate (work-stealing) mode
WIDE = [(i,) for i in range(1, 600)]
WIDE_EXPECTED = get_counter("naive").count(DB, WIDE)


def _segment_gone(name):
    try:
        segment = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return True
    segment.close()
    return False


class TestEquivalence:
    def test_counts_match_naive_on_shm_plane(self):
        with ShmShardedCounter(num_shards=2) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.plane == "shm"

    def test_wide_batch_uses_candidate_mode(self):
        with ShmShardedCounter(num_shards=2) as counter:
            assert counter.count(DB, WIDE) == WIDE_EXPECTED
            assert counter.last_mode == "candidates"
            assert counter.chunks_dispatched > 0

    def test_narrow_batch_uses_row_mode(self):
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(DB, [(1,), (2,)])
            assert counter.last_mode == "rows"

    def test_capacity_growth_and_worker_reattach(self):
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(DB, CANDIDATES)
            pids = list(counter.worker_pids)
            # > INITIAL_BATCH_CAPACITY candidates forces a block regrow;
            # workers must re-attach the renamed blocks transparently
            big = [(i,) for i in range(shm_mod.INITIAL_BATCH_CAPACITY + 10)]
            expected = get_counter("naive").count(DB, big)
            assert counter.count(DB, big) == expected
            assert counter.worker_pids == pids

    def test_serial_fallback_still_counts(self):
        with ShmShardedCounter(num_shards=2, use_processes=False) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.plane == "serial"

    def test_registered_as_an_engine(self):
        counter = get_counter("shm")
        assert isinstance(counter, ShmShardedCounter)
        counter.close()


class TestAccounting:
    def test_records_read_is_passes_times_rows(self):
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(DB, CANDIDATES)   # rows mode
            counter.count(DB, WIDE)         # candidates mode
            assert counter.passes == 2
            assert counter.records_read == 2 * len(DB)

    def test_accounting_matches_packed_engine(self):
        packed = get_counter("packed")
        with ShmShardedCounter(num_shards=2) as counter:
            for engine in (packed, counter):
                engine.count(DB, CANDIDATES)
                engine.count(DB, WIDE)
            assert counter.passes == packed.passes
            assert counter.records_read == packed.records_read
            assert counter.itemsets_counted == packed.itemsets_counted

    def test_attach_and_startup_are_reported(self):
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(DB, CANDIDATES)
            assert counter.last_attach_seconds > 0.0
            assert len(counter.worker_startup_seconds) == 2
            assert all(s >= 0.0 for s in counter.worker_startup_seconds)

    def test_scheduler_metrics_are_emitted(self):
        from repro.obs.instrument import Instrumentation

        obs = Instrumentation()
        with ShmShardedCounter(num_shards=2) as counter:
            counter.obs = obs
            counter.count(DB, WIDE)
        document = obs.metrics.to_dict()
        assert document["counters"]["scheduler.mode.candidates"] == 1
        assert "shard.steals" in document["counters"]
        assert "shard.attach_seconds" in document["gauges"]


class TestCleanup:
    def test_close_unlinks_every_segment(self):
        counter = ShmShardedCounter(num_shards=2)
        counter.count(DB, CANDIDATES)
        names = [segment.name for segment in counter._plane.owned]
        assert names
        counter.close()
        assert all(_segment_gone(name) for name in names)
        assert counter.plane == "unattached"

    def test_garbage_collection_unlinks_segments(self):
        # losing every reference without close() must not leak /dev/shm:
        # the weakref.finalize backstop unlinks the owned blocks
        counter = ShmShardedCounter(num_shards=2)
        counter.count(DB, CANDIDATES)
        names = [segment.name for segment in counter._plane.owned]
        del counter
        gc.collect()
        assert all(_segment_gone(name) for name in names)

    def test_worker_crash_mid_pass_raises_and_cleans_up(self):
        counter = ShmShardedCounter(num_shards=2)
        counter.count(DB, CANDIDATES)
        names = [segment.name for segment in counter._plane.owned]
        victim = counter.worker_pids[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 5.0
        while time.time() < deadline:  # wait for the pipe to break
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.01)
        with pytest.raises(RuntimeError, match="died mid-pass"):
            counter.count(DB, CANDIDATES)
        assert counter.worker_pids == []
        assert all(_segment_gone(name) for name in names)
        # the engine recovers by re-attaching on the next count
        assert counter.count(DB, CANDIDATES) == EXPECTED
        counter.close()

    def test_close_is_idempotent_then_counting_raises(self):
        counter = ShmShardedCounter(num_shards=2)
        counter.count(DB, CANDIDATES)
        counter.close()
        counter.close()  # second close is free
        with pytest.raises(EngineClosedError):
            counter.count(DB, CANDIDATES)

    def test_detach_keeps_engine_usable(self):
        # internal lifecycle: detach (stall recovery, ladder steps)
        # releases the plane but the next count() re-attaches
        counter = ShmShardedCounter(num_shards=2)
        counter.count(DB, CANDIDATES)
        counter._detach()
        assert counter.plane == "unattached"
        assert counter.count(DB, CANDIDATES) == EXPECTED
        counter.close()


class TestFallbackLadder:
    def test_mmap_rung_when_shared_memory_unavailable(self, monkeypatch):
        real = shm_mod._shared_memory

        class Shim:
            @staticmethod
            def SharedMemory(*args, **kwargs):
                if kwargs.get("create"):
                    raise OSError("simulated: /dev/shm unavailable")
                return real.SharedMemory(*args, **kwargs)

        monkeypatch.setattr(shm_mod, "_shared_memory", Shim)
        with ShmShardedCounter(num_shards=2) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.plane == "mmap"
            assert counter.count(DB, WIDE) == WIDE_EXPECTED

    def test_mmap_rung_leaves_no_temp_files(self, monkeypatch, tmp_path):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            real = shm_mod._shared_memory

            class Shim:
                @staticmethod
                def SharedMemory(*args, **kwargs):
                    raise OSError("simulated")

            monkeypatch.setattr(shm_mod, "_shared_memory", Shim)
            counter = ShmShardedCounter(num_shards=2)
            assert counter.count(DB, CANDIDATES) == EXPECTED
            counter.close()
            assert [p for p in os.listdir(tmp_path) if "pincer-shm" in p] == []
        finally:
            tempfile.tempdir = None

    def test_pipe_rung_when_worker_spawn_fails(self, monkeypatch):
        # every shared-memory spawn failing must fall through to the
        # inherited fork/pipe plane, not error out
        monkeypatch.setattr(
            ShmShardedCounter,
            "_spawn_shm_workers",
            lambda self, *args, **kwargs: False,
        )
        with ShmShardedCounter(num_shards=2) as counter:
            assert counter.count(DB, CANDIDATES) == EXPECTED
            assert counter.plane == "pipe"

    def test_full_ladder_agrees_on_supports(self, monkeypatch):
        results = {}
        with ShmShardedCounter(num_shards=2) as counter:
            results["shm"] = counter.count(DB, WIDE)
        real = shm_mod._shared_memory

        class Shim:
            @staticmethod
            def SharedMemory(*args, **kwargs):
                raise OSError("simulated")

        monkeypatch.setattr(shm_mod, "_shared_memory", Shim)
        with ShmShardedCounter(num_shards=2) as counter:
            results["mmap"] = counter.count(DB, WIDE)
        monkeypatch.setattr(shm_mod, "_shared_memory", real)
        with ShmShardedCounter(num_shards=2, use_processes=False) as counter:
            results["serial"] = counter.count(DB, WIDE)
        assert results["shm"] == results["mmap"] == results["serial"]


class TestSchedulerPlumbing:
    def test_note_pass_rate_reaches_the_scheduler(self):
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(DB, CANDIDATES)
            counter.note_pass_rate(1e9)
            assert counter._scheduler._miner_rate == 1e9

    def test_fast_miner_rate_keeps_row_mode(self):
        with ShmShardedCounter(num_shards=2) as counter:
            counter.count(DB, CANDIDATES)
            # predicted pass time ~ 600/1e9 s, far under MIN_STEAL_SECONDS
            counter.note_pass_rate(1e9)
            counter.count(DB, WIDE)
            assert counter.last_mode == "rows"

    def test_steal_chunk_override(self):
        with ShmShardedCounter(num_shards=2, steal_chunk=10) as counter:
            counter.count(DB, WIDE)
            assert counter.last_mode == "candidates"
            assert counter.chunks_dispatched == -(-len(WIDE) // 10)


class TestPincerIntegration:
    def test_mfs_identical_to_serial_engine(self):
        from repro.core.pincer import PincerSearch

        serial = PincerSearch(engine="packed").mine(DB, 0.05)
        with ShmShardedCounter(num_shards=2) as counter:
            shm = PincerSearch(engine="shm").mine(DB, 0.05, counter=counter)
        assert serial.mfs == shm.mfs
        assert serial.supports == shm.supports

    def test_miner_closes_engines_it_creates(self, monkeypatch):
        from repro.core.pincer import PincerSearch

        closed = []
        original = ShmShardedCounter.close

        def tracking_close(self):
            closed.append(True)
            original(self)

        monkeypatch.setattr(ShmShardedCounter, "close", tracking_close)
        PincerSearch(engine="shm").mine(DB, 0.05)
        assert closed
