"""Unit tests for the sharded counting engine (``repro.db.parallel``)."""

import time

import pytest

from repro.db.base import EngineClosedError
from repro.db.counting import CountingDeadline, get_counter
from repro.db.parallel import (
    MIN_ROWS_PER_SHARD,
    ShardedCounter,
    default_num_shards,
    _shard_bounds,
)
from repro.db.transaction_db import TransactionDatabase

TRANSACTIONS = [[1, 2, 3], [1, 2], [2, 3], [3], [1], [2]] * 4
GROUND_TRUTH_DB = TransactionDatabase(TRANSACTIONS)
CANDIDATES = [(), (1,), (2,), (3,), (1, 2), (2, 3), (1, 2, 3), (9,)]
EXPECTED = get_counter("naive").count(GROUND_TRUTH_DB, CANDIDATES)


class TestShardHeuristics:
    def test_default_num_shards_respects_min_rows(self):
        assert default_num_shards(0) == 1
        assert default_num_shards(MIN_ROWS_PER_SHARD - 1) == 1
        assert default_num_shards(MIN_ROWS_PER_SHARD, max_workers=8) == 1
        assert default_num_shards(MIN_ROWS_PER_SHARD * 4, max_workers=2) == 2

    def test_shard_bounds_cover_rows_exactly(self):
        for rows, shards in ((10, 3), (7, 7), (5, 1), (0, 1)):
            bounds = _shard_bounds(rows, shards)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == rows
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedCounter(num_shards=0)


class TestSerialMode:
    def test_counts_match_naive(self):
        with ShardedCounter(use_processes=False, num_shards=3) as counter:
            assert counter.count(GROUND_TRUTH_DB, CANDIDATES) == EXPECTED
            assert counter.worker_pids == []

    def test_single_shard_default_on_small_db(self):
        with ShardedCounter() as counter:
            assert counter.count(GROUND_TRUTH_DB, CANDIDATES) == EXPECTED
            # the heuristic refuses to shard a 24-row database
            assert counter.worker_pids == []


class TestProcessMode:
    def test_counts_match_naive_across_processes(self):
        with ShardedCounter(num_shards=3) as counter:
            assert counter.count(GROUND_TRUTH_DB, CANDIDATES) == EXPECTED
            assert len(counter.worker_pids) == 3

    def test_workers_reused_across_passes(self):
        with ShardedCounter(num_shards=2) as counter:
            counter.count(GROUND_TRUTH_DB, [(1,)])
            pids = list(counter.worker_pids)
            counter.count(GROUND_TRUTH_DB, [(2,), (1, 2)])
            assert counter.worker_pids == pids

    def test_new_database_respawns_workers(self):
        with ShardedCounter(num_shards=2) as counter:
            counter.count(GROUND_TRUTH_DB, [(1,)])
            pids = list(counter.worker_pids)
            other = TransactionDatabase([[1, 5]] * 8)
            assert counter.count(other, [(5,)]) == {(5,): 8}
            assert counter.worker_pids != pids

    def test_close_is_idempotent(self):
        counter = ShardedCounter(num_shards=2)
        counter.count(GROUND_TRUTH_DB, [(1,)])
        counter.close()
        assert counter.worker_pids == []
        counter.close()  # second close is free
        # counting after close() is a caller bug, not a silent re-attach
        with pytest.raises(EngineClosedError):
            counter.count(GROUND_TRUTH_DB, [(1,)])

    def test_more_shards_than_rows_is_clamped(self):
        db = TransactionDatabase([[1], [1, 2]])
        with ShardedCounter(num_shards=10) as counter:
            assert counter.count(db, [(1,), (2,)]) == {(1,): 2, (2,): 1}


class TestAccounting:
    def test_accounting_matches_bitmap_engine(self):
        bitmap = get_counter("bitmap")
        with ShardedCounter(num_shards=2) as sharded:
            for counter in (bitmap, sharded):
                counter.count(GROUND_TRUTH_DB, CANDIDATES)
                counter.count(GROUND_TRUTH_DB, [(1, 2)])
            assert sharded.passes == bitmap.passes == 2
            assert sharded.records_read == bitmap.records_read
            assert sharded.itemsets_counted == bitmap.itemsets_counted


class TestDeadline:
    def test_expired_deadline_aborts_serial(self):
        with ShardedCounter(use_processes=False) as counter:
            counter.deadline = time.perf_counter() - 1.0
            with pytest.raises(CountingDeadline):
                counter.count(GROUND_TRUTH_DB, [(1,)])

    def test_expired_deadline_aborts_before_dispatch(self):
        counter = ShardedCounter(num_shards=2)
        try:
            counter.count(GROUND_TRUTH_DB, [(1,)])
            counter.deadline = time.perf_counter() - 1.0
            with pytest.raises(CountingDeadline):
                counter.count(GROUND_TRUTH_DB, [(2,)])
        finally:
            counter.close()

    def test_mid_pass_deadline_drops_worker_pool(self):
        counter = ShardedCounter(num_shards=2)
        try:
            counter.count(GROUND_TRUTH_DB, [(1,)])
            # expire the deadline between dispatch and collection: the
            # poll loop must drop the pool so stale replies cannot poison
            # the next pass
            counter.deadline = time.perf_counter() - 1.0
            with pytest.raises(CountingDeadline):
                counter._count_in_workers([(2,)])
            assert counter.worker_pids == []
            counter.deadline = None
            assert counter.count(GROUND_TRUTH_DB, [(2,)]) == {
                (2,): EXPECTED[(2,)]
            }
        finally:
            counter.close()


class TestShardResourceAttribution:
    def test_worker_replies_carry_cpu_and_rss(self):
        with ShardedCounter(num_shards=2, use_processes=True) as sharded:
            sharded.count(GROUND_TRUTH_DB, CANDIDATES)
            if not sharded.worker_pids:
                pytest.skip("worker processes unavailable on this platform")
            assert len(sharded.last_shard_cpu_seconds) == 2
            assert len(sharded.last_shard_maxrss_kb) == 2
            assert all(s >= 0.0 for s in sharded.last_shard_cpu_seconds)
            # every worker is a live Python process: its high-water RSS
            # cannot be zero on any platform with a resource module
            assert all(kb > 0 for kb in sharded.last_shard_maxrss_kb)

    def test_serial_mode_attributes_cpu_per_shard(self):
        with ShardedCounter(num_shards=2, use_processes=False) as sharded:
            sharded.count(GROUND_TRUTH_DB, CANDIDATES)
            assert len(sharded.last_shard_cpu_seconds) == 2
            assert all(s >= 0.0 for s in sharded.last_shard_cpu_seconds)
            assert len(sharded.last_shard_maxrss_kb) == 2

    def test_rusage_parity_serial_vs_workers(self):
        # both modes expose the same attribution surface with one entry
        # per shard, so downstream metrics code never branches on mode
        with ShardedCounter(num_shards=2, use_processes=False) as serial:
            serial.count(GROUND_TRUTH_DB, CANDIDATES)
            serial_shape = (
                len(serial.last_shard_seconds),
                len(serial.last_shard_cpu_seconds),
                len(serial.last_shard_maxrss_kb),
            )
        with ShardedCounter(num_shards=2, use_processes=True) as workers:
            workers.count(GROUND_TRUTH_DB, CANDIDATES)
            worker_shape = (
                len(workers.last_shard_seconds),
                len(workers.last_shard_cpu_seconds),
                len(workers.last_shard_maxrss_kb),
            )
        assert serial_shape == worker_shape == (2, 2, 2)

    def test_shard_metrics_include_cpu_and_rss(self):
        from repro.obs.instrument import Instrumentation

        obs = Instrumentation()
        with ShardedCounter(num_shards=2, use_processes=False) as sharded:
            sharded.obs = obs
            sharded.count(GROUND_TRUTH_DB, CANDIDATES)
        document = obs.metrics.to_dict()
        assert document["histograms"]["shard.cpu_seconds"]["count"] == 2
        assert "shard.max_rss_kb" in document["gauges"]

    def test_close_clears_attribution(self):
        sharded = ShardedCounter(num_shards=2, use_processes=False)
        sharded.count(GROUND_TRUTH_DB, CANDIDATES)
        sharded.close()
        assert sharded.last_shard_cpu_seconds == []
        assert sharded.last_shard_maxrss_kb == []


class TestWorkerCapEnv:
    def test_env_variable_caps_shards(self, monkeypatch):
        from repro.db import parallel

        rows = MIN_ROWS_PER_SHARD * 100
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 8)
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert default_num_shards(rows) == 2
        # the env cap is the operator's ceiling: it beats an explicit,
        # larger max_workers too
        assert default_num_shards(rows, max_workers=8) == 2

    def test_env_variable_never_raises_the_count(self, monkeypatch):
        rows = MIN_ROWS_PER_SHARD * 100
        monkeypatch.setenv("REPRO_MAX_WORKERS", "64")
        assert default_num_shards(rows, max_workers=2) == 2

    def test_garbage_env_value_is_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "plenty")
        rows = MIN_ROWS_PER_SHARD * 4
        assert default_num_shards(rows, max_workers=2) == 2


class TestPipeChunking:
    def test_oversized_batch_is_chunked_and_counts_survive(self):
        from repro.db.parallel import PIPE_BATCH_LIMIT
        from repro.obs.instrument import Instrumentation

        candidates = [(item,) for item in range(PIPE_BATCH_LIMIT + 50)]
        expected = get_counter("naive").count(GROUND_TRUTH_DB, candidates)
        obs = Instrumentation()
        with ShardedCounter(num_shards=2) as counter:
            counter.obs = obs
            assert counter.count(GROUND_TRUTH_DB, candidates) == expected
            # rows are billed once per pass, not once per chunk
            assert counter.records_read == len(GROUND_TRUTH_DB)
        assert obs.metrics.to_dict()["counters"]["shard.batch_chunks"] == 2

    def test_small_batch_is_one_chunk(self):
        from repro.obs.instrument import Instrumentation

        obs = Instrumentation()
        with ShardedCounter(num_shards=2) as counter:
            counter.obs = obs
            counter.count(GROUND_TRUTH_DB, CANDIDATES)
        assert obs.metrics.to_dict()["counters"]["shard.batch_chunks"] == 1


class TestSpawnContextFallback:
    def test_workers_start_under_spawn_context(self, monkeypatch):
        # simulate a platform without fork: _spawn_workers must fall back
        # to the default (spawn) context and still produce exact counts
        import multiprocessing
        from repro.db import parallel

        spawn = multiprocessing.get_context("spawn")
        monkeypatch.setattr(
            parallel.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        monkeypatch.setattr(
            parallel.multiprocessing, "get_context", lambda method=None: spawn
        )
        with ShardedCounter(num_shards=2) as counter:
            assert counter.count(GROUND_TRUTH_DB, CANDIDATES) == EXPECTED
            assert len(counter.worker_pids) == 2
            assert len(counter.worker_startup_seconds) == 2

    def test_spawn_failure_falls_back_to_serial_shards(self, monkeypatch):
        from repro.db import parallel

        class ExplodingContext:
            @staticmethod
            def Pipe():
                raise OSError("simulated: cannot create worker pipes")

        monkeypatch.setattr(
            parallel.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        monkeypatch.setattr(
            parallel.multiprocessing,
            "get_context",
            lambda method=None: ExplodingContext(),
        )
        with ShardedCounter(num_shards=2) as counter:
            assert counter.count(GROUND_TRUTH_DB, CANDIDATES) == EXPECTED
            assert counter.worker_pids == []  # serial shards served the pass

    def test_worker_startup_seconds_reported(self):
        with ShardedCounter(num_shards=2) as counter:
            counter.count(GROUND_TRUTH_DB, CANDIDATES)
            assert len(counter.worker_startup_seconds) == 2
            assert all(s >= 0.0 for s in counter.worker_startup_seconds)


class TestAdaptiveShardScheduler:
    def _scheduler(self, workers=4, **kwargs):
        from repro.db.parallel import AdaptiveShardScheduler

        return AdaptiveShardScheduler(workers, **kwargs)

    def test_few_candidates_force_row_mode(self):
        scheduler = self._scheduler(workers=4)
        mode, _ = scheduler.choose(3, num_rows=100_000)
        assert mode == "rows"

    def test_tiny_matrix_forces_candidate_mode(self):
        # 100 rows = 2 words < 4 workers: row slices would idle workers
        scheduler = self._scheduler(workers=4)
        mode, _ = scheduler.choose(64, num_rows=100)
        assert mode == "candidates"

    def test_wide_unmeasured_batch_steals(self):
        scheduler = self._scheduler(workers=2)
        mode, chunk = scheduler.choose(10_000, num_rows=1_000_000)
        assert mode == "candidates"
        assert scheduler.MIN_CHUNK <= chunk <= scheduler.MAX_CHUNK

    def test_fast_miner_rate_prefers_rows(self):
        scheduler = self._scheduler(workers=2)
        scheduler.note_miner_rate(1e9)  # pass would finish in microseconds
        mode, _ = scheduler.choose(10_000, num_rows=1_000_000)
        assert mode == "rows"

    def test_measured_rates_win_with_hysteresis(self):
        scheduler = self._scheduler(workers=2)
        scheduler.observe("rows", 1000, 1.0)        # 1000 c/s
        scheduler.observe("candidates", 1000, 0.5)  # 2000 c/s > 1.2x
        mode, _ = scheduler.choose(1000, num_rows=1_000_000)
        assert mode == "candidates"

    def test_hysteresis_band_keeps_rows(self):
        scheduler = self._scheduler(workers=2)
        scheduler.observe("rows", 1000, 1.0)
        scheduler.observe("candidates", 1100, 1.0)  # only 1.1x faster
        mode, _ = scheduler.choose(1000, num_rows=1_000_000)
        assert mode == "rows"

    def test_fixed_chunk_override(self):
        scheduler = self._scheduler(workers=2, chunk=17)
        assert scheduler.chunk_for(100_000) == 17

    def test_chunk_targets_four_per_worker(self):
        scheduler = self._scheduler(workers=2)
        assert scheduler.chunk_for(8 * 300) == 300

    def test_decision_ledger(self):
        scheduler = self._scheduler(workers=2)
        scheduler.choose(1, num_rows=1_000_000)
        scheduler.choose(10_000, num_rows=1_000_000)
        assert scheduler.decisions == {"rows": 1, "candidates": 1}

    def test_rejects_zero_workers(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self._scheduler(workers=0)
