"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main
from repro.db import io
from repro.db.transaction_db import TransactionDatabase


@pytest.fixture()
def basket_file(tmp_path):
    path = tmp_path / "toy.dat"
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2, 3], [1, 2], [3, 4], [1, 2, 3]]
    )
    io.save(db, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_flags(self):
        args = build_parser().parse_args(
            ["mine", "db.dat", "--min-support", "1.5",
             "--algorithm", "apriori", "--engine", "trie"]
        )
        assert args.min_support == 1.5
        assert args.algorithm == "apriori"
        assert args.engine == "trie"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "db.dat", "--min-support", "1", "--algorithm", "eclat"]
            )


class TestGenerate:
    def test_generate_writes_database(self, tmp_path, capsys):
        out = tmp_path / "gen.dat"
        code = main([
            "generate", "T5.I2.D100K", "--transactions", "200",
            "--items", "50", "--patterns", "10", "--out", str(out),
        ])
        assert code == 0
        db = io.load(out)
        assert len(db) == 200
        assert "200 transactions" in capsys.readouterr().out


class TestMine:
    @pytest.mark.parametrize(
        "algorithm", ["pincer", "pincer-pure", "apriori", "topdown"]
    )
    def test_mine_all_algorithms(self, basket_file, capsys, algorithm):
        code = main([
            "mine", basket_file, "--min-support", "40",
            "--algorithm", algorithm,
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "maximum frequent set" in output
        assert "{1, 2, 3}" in output

    def test_show_passes(self, basket_file, capsys):
        main(["mine", basket_file, "--min-support", "40", "--show-passes"])
        assert "pass 1:" in capsys.readouterr().out


class TestRules:
    def test_rules_output(self, basket_file, capsys):
        code = main([
            "rules", basket_file, "--min-support", "40",
            "--min-confidence", "75", "--depth", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "rules (minconf 75" in output
        assert "->" in output

    def test_top_limits_rules(self, basket_file, capsys):
        main([
            "rules", basket_file, "--min-support", "40",
            "--min-confidence", "10", "--top", "1",
        ])
        output = capsys.readouterr().out
        assert output.count("->") == 1


class TestKeys:
    def test_keys_from_csv_with_header(self, tmp_path, capsys):
        path = tmp_path / "relation.csv"
        path.write_text("id,name,dept\n1,a,x\n2,a,x\n3,b,y\n")
        assert main(["keys", str(path)]) == 0
        output = capsys.readouterr().out
        assert "minimal key" in output
        assert "(id)" in output

    def test_keys_without_header(self, tmp_path, capsys):
        path = tmp_path / "relation.csv"
        path.write_text("1,a\n2,a\n")
        assert main(["keys", str(path), "--no-header"]) == 0
        assert "col0" in capsys.readouterr().out

    def test_keys_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("")
        assert main(["keys", str(path)]) == 2
        assert "empty" in capsys.readouterr().err


class TestBench:
    def test_unknown_experiment(self, capsys):
        assert main(["bench", "fig9-nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_small_bench_run(self, capsys):
        code = main([
            "bench", "fig3-t5-i2", "--scale", "150",
            "--min-support", "8",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "pincer-search" in output
        assert "apriori" in output
        assert "relative time" in output

    def test_bench_chart_rendering(self, capsys):
        code = main([
            "bench", "fig3-t5-i2", "--scale", "150",
            "--min-support", "8", "--chart",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "candidates per cell" in output
        assert "█" in output

    def test_bench_csv_export(self, tmp_path, capsys):
        out = tmp_path / "cells.csv"
        code = main([
            "bench", "fig3-t5-i2", "--scale", "150",
            "--min-support", "8", "--csv", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert text.startswith("database,")
        assert "pincer-search" in text
