"""Property test: every counting engine agrees with the naive scan.

The naive engine is the executable specification — a flat
transaction-by-candidate scan with no shared state, no caching, and no
vectorization.  Every other engine (and every forced engine variant:
multi-process sharded, serial sharded, pure-Python packed) must return
bit-identical counts on randomized databases, including the edge cases
the fast paths are most likely to get wrong: empty transactions, the
empty candidate ``()``, an empty candidate batch, and candidates naming
items outside the universe.
"""

import random

import pytest

from repro.db.counting import available_engines, get_counter
from repro.db.parallel import ShardedCounter
from repro.db.transaction_db import TransactionDatabase
from repro.db.vertical import PackedCounter

NUM_TRIALS = 12


def random_database(rng):
    num_items = rng.randint(1, 20)
    num_transactions = rng.randint(0, 60)
    transactions = []
    for _ in range(num_transactions):
        size = rng.randint(0, min(8, num_items))
        transactions.append(rng.sample(range(num_items), size))
    # a universe wider than the occurring items exercises zero-support rows
    universe = range(num_items + rng.randint(0, 3))
    return TransactionDatabase(transactions, universe=universe)


def random_candidates(rng, db):
    universe = list(db.universe) or [0]
    candidates = []
    for _ in range(rng.randint(0, 40)):
        size = rng.randint(0, min(5, len(universe)))
        candidates.append(tuple(sorted(rng.sample(universe, size))))
    # edge cases the fast paths special-case: the empty itemset, items
    # outside the universe, and a duplicate of an earlier candidate
    candidates.append(())
    candidates.append((max(universe) + 17,))
    candidates.append((universe[0], max(universe) + 17))
    if candidates[0]:
        candidates.append(candidates[0])
    return candidates


def variant_counters():
    """Engine factories covering every code path, not just the registry."""
    variants = {name: lambda n=name: get_counter(n) for name in available_engines()}
    variants["packed-python"] = lambda: PackedCounter(force_python=True)
    variants["sharded-serial"] = lambda: ShardedCounter(use_processes=False)
    variants["sharded-2proc"] = lambda: ShardedCounter(num_shards=2)
    return variants


@pytest.mark.parametrize("variant", sorted(variant_counters()))
def test_randomised_equivalence_with_naive(variant):
    factory = variant_counters()[variant]
    rng = random.Random(2026)
    for trial in range(NUM_TRIALS):
        db = random_database(rng)
        candidates = random_candidates(rng, db)
        expected = get_counter("naive").count(db, candidates)
        counter = factory()
        try:
            actual = counter.count(db, candidates)
        finally:
            close = getattr(counter, "close", None)
            if close is not None:
                close()
        assert actual == expected, "trial %d: %s diverged" % (trial, variant)


@pytest.mark.parametrize("variant", sorted(variant_counters()))
def test_empty_database(variant):
    db = TransactionDatabase([], universe=[1, 2, 3])
    counter = variant_counters()[variant]()
    try:
        counts = counter.count(db, [(), (1,), (1, 2), (9,)])
    finally:
        close = getattr(counter, "close", None)
        if close is not None:
            close()
    assert counts == {(): 0, (1,): 0, (1, 2): 0, (9,): 0}


@pytest.mark.parametrize("variant", sorted(variant_counters()))
def test_empty_batch_is_free(variant):
    db = TransactionDatabase([[1, 2], [2]])
    counter = variant_counters()[variant]()
    try:
        assert counter.count(db, []) == {}
        assert counter.passes == 0
        assert counter.records_read == 0
    finally:
        close = getattr(counter, "close", None)
        if close is not None:
            close()


@pytest.mark.parametrize("variant", sorted(variant_counters()))
def test_accounting_identical_across_engines(variant):
    """passes / records_read / itemsets_counted must not depend on engine."""
    db = TransactionDatabase([[1, 2, 3], [1, 2], [3], []])
    batches = [[(1,), (2,), (3,)], [(1, 2), (1, 3), (2, 3)], [(1, 2, 3)]]
    counter = variant_counters()[variant]()
    try:
        for batch in batches:
            counter.count(db, batch)
        assert counter.passes == 3
        assert counter.records_read == 3 * len(db)
        assert counter.itemsets_counted == 7
    finally:
        close = getattr(counter, "close", None)
        if close is not None:
            close()
