"""Differential suite for the compressed counting tier.

The roaring engine is a fallback ladder — roaring (NumPy hybrid
containers), packed, chunked-int ``bitmap``, and plain ``python`` — and
the whole point of the ladder is that every rung returns *byte-identical*
counts, so the tier choice is purely a performance decision.  These tests
pin that: randomized databases shaped to exercise every container kind
(sparse array columns, dense bitmap spans, clustered run columns), plus
the degenerate shapes the container ops special-case — empty columns,
all-ones columns, single-row chunks, duplicate candidates, and
candidates naming items that occur nowhere.
"""

import random

import pytest

from repro.db.roaring import (
    ARRAY_MAX,
    CHUNK_SIZE,
    ChunkedIntIndex,
    RoaringCounter,
    RoaringIndex,
    TIER_LADDER,
    measure_density,
)
from repro.db.counting import get_counter
from repro.db.transaction_db import TransactionDatabase
from repro.db.vertical import HAVE_NUMPY

NUM_TRIALS = 8


def ladder_counters():
    return {tier: lambda t=tier: RoaringCounter(force_tier=t) for t in TIER_LADDER}


def random_database(rng):
    """Small random db with a universe wider than the occurring items."""
    num_items = rng.randint(1, 24)
    transactions = []
    for _ in range(rng.randint(0, 80)):
        size = rng.randint(0, min(10, num_items))
        transactions.append(rng.sample(range(num_items), size))
    return TransactionDatabase(
        transactions, universe=range(num_items + rng.randint(0, 3))
    )


def random_candidates(rng, db):
    universe = list(db.universe) or [0]
    candidates = []
    for _ in range(rng.randint(0, 50)):
        size = rng.randint(0, min(6, len(universe)))
        candidates.append(tuple(sorted(rng.sample(universe, size))))
    candidates.append(())
    candidates.append((max(universe) + 17,))
    candidates.append((universe[0], max(universe) + 17))
    if candidates and candidates[0]:
        candidates.append(candidates[0])  # duplicate of an earlier candidate
    return candidates


@pytest.mark.parametrize("tier", sorted(TIER_LADDER))
def test_randomised_ladder_equivalence_with_naive(tier):
    rng = random.Random(7041)
    for trial in range(NUM_TRIALS):
        db = random_database(rng)
        candidates = random_candidates(rng, db)
        expected = get_counter("naive").count(db, candidates)
        actual = RoaringCounter(force_tier=tier).count(db, candidates)
        assert actual == expected, "trial %d: tier %s diverged" % (trial, tier)


def multi_container_database():
    """A multi-chunk db whose columns hit all three container kinds.

    Item 0 is dense (bitmap span), item 1 is one solid run, item 2 is
    all-ones, items 3+ are a sparse tail; the row count crosses a chunk
    boundary so span arithmetic and absent-chunk skipping both fire.
    """
    rng = random.Random(11)
    num_rows = CHUNK_SIZE + 4096
    baskets = []
    for row in range(num_rows):
        basket = {2}  # all-ones column
        if rng.random() < 0.5:
            basket.add(0)
        if CHUNK_SIZE // 2 <= row < CHUNK_SIZE // 2 + 9000:
            basket.add(1)
        basket.add(rng.randint(3, 300))
        baskets.append(sorted(basket))
    return TransactionDatabase(baskets, universe=range(302))


def test_ladder_identical_on_multi_container_database():
    db = multi_container_database()
    rng = random.Random(13)
    candidates = []
    for _ in range(400):
        size = rng.randint(1, 4)
        candidates.append(tuple(sorted(rng.sample(range(0, 40), size))))
    candidates += [(), (2,), (0, 1, 2), (300, 301), (301,)]
    candidates.append(candidates[0])
    reference = None
    for tier in TIER_LADDER:
        counts = RoaringCounter(force_tier=tier).count(db, candidates)
        if reference is None:
            reference = counts
        else:
            assert counts == reference, "tier %s diverged" % tier
    # the all-ones column must count every row
    assert reference[(2,)] == len(db)


@pytest.mark.skipif(not HAVE_NUMPY, reason="roaring rung needs NumPy")
def test_container_kinds_match_column_shapes():
    db = multi_container_database()
    index = RoaringIndex.from_database(db)
    mix = index.container_counts()
    assert mix["bitmap"] >= 1  # the dense item-0 column
    assert mix["run"] >= 2  # the solid-run and all-ones columns
    assert mix["array"] >= 200  # the sparse tail
    # compression must beat the flat packed layout on this shape
    assert index.compressed_bytes() < index.dense_bytes()


@pytest.mark.skipif(not HAVE_NUMPY, reason="roaring rung needs NumPy")
def test_empty_and_all_ones_columns():
    num_rows = CHUNK_SIZE + 77  # cross a chunk boundary
    baskets = [[0] for _ in range(num_rows)]
    baskets[5] = [0, 2]
    db = TransactionDatabase(baskets, universe=range(4))
    index = RoaringIndex.from_database(db)
    candidates = [(0,), (1,), (2,), (3,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]
    counts = dict(zip(candidates, index.counts(candidates)))
    assert counts[(0,)] == num_rows
    assert counts[(1,)] == 0  # empty column: never stored
    assert counts[(2,)] == 1
    assert counts[(0, 1)] == 0
    assert counts[(0, 2)] == 1
    assert counts[(1, 2)] == 0
    assert counts[(0, 1, 2)] == 0


def test_forced_tier_steps_down_without_numpy(monkeypatch):
    import repro.db.roaring as roaring_module

    monkeypatch.setattr(roaring_module, "HAVE_NUMPY", False)
    counter = RoaringCounter(force_tier="roaring")
    db = TransactionDatabase([[0, 1], [1]], universe=range(3))
    counts = counter.count(db, [(0,), (1,), (0, 1)])
    assert counts == {(0,): 1, (1,): 2, (0, 1): 1}
    assert counter.tier == "bitmap"
    packed_counter = RoaringCounter(force_tier="packed")
    packed_counter.count(db, [(0,)])
    assert packed_counter.tier == "python"


def test_unknown_tier_rejected():
    with pytest.raises(ValueError):
        RoaringCounter(force_tier="zram")


def test_tier_resolution_follows_density():
    dense_db = TransactionDatabase(
        [[0, 1, 2] for _ in range(64)], universe=range(3)
    )
    sparse_rows = [[i % 97] for i in range(2000)]
    sparse_db = TransactionDatabase(sparse_rows, universe=range(97))
    dense_counter = RoaringCounter()
    dense_counter.count(dense_db, [(0,)])
    sparse_counter = RoaringCounter()
    sparse_counter.count(sparse_db, [(0,)])
    if HAVE_NUMPY:
        assert dense_counter.tier == "packed"
        assert sparse_counter.tier == "roaring"
    else:
        assert dense_counter.tier == "python"
        assert sparse_counter.tier == "bitmap"
    assert dense_counter.density > sparse_counter.density


def test_chunked_int_index_skips_absent_chunks():
    num_rows = 3 * CHUNK_SIZE
    baskets = [[] for _ in range(num_rows)]
    baskets[10] = [0]
    baskets[2 * CHUNK_SIZE + 5] = [0, 1]
    db = TransactionDatabase(baskets, universe=range(2))
    index = ChunkedIntIndex.from_database(db)
    # only the two occupied chunks are stored
    assert set(index._columns[0].chunks) == {0, 2}
    assert set(index._columns[1].chunks) == {2}
    counts = index.counts([(0,), (1,), (0, 1)])
    assert counts == [2, 1, 1]


def test_measure_density_evidence_shape():
    db = TransactionDatabase([[0, 1], [1], []], universe=range(4))
    evidence = measure_density(db)
    assert evidence["rows"] == 3
    assert evidence["items"] == 4
    assert evidence["nnz"] == 3
    assert evidence["density"] == pytest.approx(3 / 12.0)
    assert evidence["max_item_density"] == pytest.approx(2 / 3.0)
    assert 0.0 <= evidence["sparse_item_fraction"] <= 1.0


def test_prefix_cache_accounting_and_reset():
    db = TransactionDatabase(
        [[0, 1, 2], [0, 1], [1, 2], [0, 2]], universe=range(3)
    )
    # pin a walk-based rung: the packed tier's blocked kernel only starts
    # sharing prefixes once blocks are large enough to be worth planning
    counter = RoaringCounter(force_tier="roaring")
    counter.count(db, [(0, 1), (0, 1, 2), (0, 2)])
    assert counter.prefix_cache_hits > 0
    assert counter.prefix_cache_misses > 0
    counter.reset()
    assert counter.prefix_cache_hits == 0
    assert counter.prefix_cache_misses == 0
